(* tfree-serve — a query service over Unix-domain sockets.

   Protocol: one JSON value per line, both directions.  A request names an
   instance family, an edge partition and a protocol (the same enums the
   tfree CLI exposes) plus size parameters; the server builds the instance,
   runs the protocol through a {!Wire_runtime} network — so every charged
   message crosses a real transport — and replies with the verdict, the
   accounted bits and the measured wire traffic, reconciled.

   A request of the form [{"cmd": "shutdown"}] stops the server after the
   acknowledgement is written.  [{"op": "stats"}] returns the server's
   telemetry ({!Metrics}): queries served, per-protocol verdict counts,
   categorized error counts, retry and injected-fault tallies, connection
   and cache gauges, wire traffic totals and latency quantiles.
   [{"op": "batch", "requests": [...]}] runs many queries over one framed
   exchange and returns per-item verdicts in order — one line out, one line
   back, amortizing the JSON-line framing across the batch.

   The server is a single-threaded select event loop: every open
   connection owns a read buffer and a per-line deadline, so a slow,
   silent or chaos-faulted client costs at most its own connection while
   the loop keeps serving everyone else.  Admission is bounded by
   [max_clients]; a connection over the cap is shed with a typed
   [overload]-category error, never a hang.  Instances and partitions are
   memoized in a bounded {!Tfree_util.Lru} keyed by the request fields
   that determine them, so repeated seeds skip the rebuild (hits and
   misses are surfaced through the stats op).

   The server is built to degrade, never die: malformed lines get a
   structured [{"ok": false, "error": ..., "category": ...}] reply and the
   connection stays usable; a client killed mid-line, a half-written
   request, a reply write into a closed socket, or a silent client holding
   the line past the read deadline each cost one categorized error counter
   and at worst that one connection.  SIGPIPE is ignored for the same
   reason — a dead peer must surface as an [EPIPE] result, not a signal.

   The client side mirrors this with {!client_query}'s bounded retry:
   transient failures (connection refused, timeouts, garbled or truncated
   replies, server errors in the timeout/transport/overload categories)
   back off exponentially with deterministic jitter and try again;
   structured server rejections (malformed request, unknown op) are fatal
   immediately. *)

open Tfree_util
open Tfree_graph

(* ------------------------------------------------------ the CLI's enums *)

type family = Far | Free | Hub | Mu | Gnp | Behrend | Diluted
type partition_kind = Disjoint | Dup | Replicate | Skewed | Hash
type protocol = Unrestricted | Sim | Oblivious | Exact

let family_to_string = function
  | Far -> "far"
  | Free -> "free"
  | Hub -> "hub"
  | Mu -> "mu"
  | Gnp -> "gnp"
  | Behrend -> "behrend"
  | Diluted -> "diluted"

let family_of_string = function
  | "far" -> Some Far
  | "free" -> Some Free
  | "hub" -> Some Hub
  | "mu" -> Some Mu
  | "gnp" -> Some Gnp
  | "behrend" -> Some Behrend
  | "diluted" -> Some Diluted
  | _ -> None

let partition_to_string = function
  | Disjoint -> "disjoint"
  | Dup -> "dup"
  | Replicate -> "replicate"
  | Skewed -> "skewed"
  | Hash -> "hash"

let partition_of_string = function
  | "disjoint" -> Some Disjoint
  | "dup" -> Some Dup
  | "replicate" -> Some Replicate
  | "skewed" -> Some Skewed
  | "hash" -> Some Hash
  | _ -> None

let protocol_to_string = function
  | Unrestricted -> "unrestricted"
  | Sim -> "sim"
  | Oblivious -> "oblivious"
  | Exact -> "exact"

let protocol_of_string = function
  | "unrestricted" -> Some Unrestricted
  | "sim" -> Some Sim
  | "oblivious" -> Some Oblivious
  | "exact" -> Some Exact
  | _ -> None

(* ------------------------------------------------------------- builders *)

let build_instance family rng ~n ~d ~eps =
  match family with
  | Far -> Gen.far_with_degree rng ~n ~d ~eps
  | Free -> Gen.free_with_degree rng ~n ~d
  | Hub ->
      Gen.hub_far rng ~n ~hubs:(max 1 (n / 400))
        ~pairs:(max 1 (int_of_float (eps *. float_of_int n *. d /. 2.0)))
  | Mu -> Tfree_lowerbound.Mu_dist.sample rng ~part:(n / 3) ~gamma:2.0
  | Gnp -> Gen.gnp rng ~n ~p:(Float.min 1.0 (d /. float_of_int n))
  | Behrend ->
      (* pick digits/base so 6·(2·base)^digits is near n *)
      let base = max 2 (int_of_float (sqrt (float_of_int n /. 24.0))) in
      (Behrend.instance ~rng ~base ~digits:2 ()).Behrend.graph
  | Diluted ->
      let extra = max 1 (int_of_float (1.0 /. (3.0 *. eps)) - 1) in
      let triangles = max 1 (n / (3 * (1 + extra))) in
      Gen.diluted_far rng ~triangles ~extra_degree:extra

let build_partition kind rng ~k g =
  match kind with
  | Disjoint -> Partition.disjoint_random rng ~k g
  | Dup -> Partition.with_duplication rng ~k ~dup_p:0.3 g
  | Replicate -> Partition.replicate ~k g
  | Skewed -> Partition.skewed rng ~k ~bias:0.8 g
  | Hash -> Partition.by_endpoint_hash rng ~k g

(* ------------------------------------------------------------- requests *)

type request = {
  family : family;
  partition : partition_kind;
  protocol : protocol;
  n : int;
  d : float;
  k : int;
  eps : float;
  seed : int;
  transport : Wire_runtime.kind;
  fault : string;  (** {!Fault.parse} spec injected below the framing; [""] = none *)
}

let default_request =
  {
    family = Far;
    partition = Dup;
    protocol = Oblivious;
    n = 300;
    d = 6.0;
    k = 4;
    eps = 0.1;
    seed = 1;
    transport = Wire_runtime.Pipe;
    fault = "";
  }

type response = {
  verdict : Tfree.Tester.verdict;
  bits : int;
  rounds : int;
  max_message : int;
  wire : Wire_runtime.report;
}

(* ----------------------------------------------------------------- JSON *)

let request_to_json r =
  Jsonout.Obj
    [
      ("family", Jsonout.Str (family_to_string r.family));
      ("partition", Jsonout.Str (partition_to_string r.partition));
      ("protocol", Jsonout.Str (protocol_to_string r.protocol));
      ("n", Jsonout.Num (float_of_int r.n));
      ("d", Jsonout.Num r.d);
      ("k", Jsonout.Num (float_of_int r.k));
      ("eps", Jsonout.Num r.eps);
      ("seed", Jsonout.Num (float_of_int r.seed));
      ("transport", Jsonout.Str (Wire_runtime.kind_to_string r.transport));
      ("fault", Jsonout.Str r.fault);
    ]

exception Bad of string

let num_field j k default =
  match Jsonout.member k j with
  | None -> default
  | Some v -> (
      match Jsonout.to_float v with
      | Some f -> f
      | None -> raise (Bad (Printf.sprintf "field %S must be a number" k)))

let int_field j k default = int_of_float (num_field j k (float_of_int default))

let str_field j k default =
  match Jsonout.member k j with
  | None -> default
  | Some (Jsonout.Str s) -> s
  | Some _ -> raise (Bad (Printf.sprintf "field %S must be a string" k))

let enum_field j k of_string default =
  match Jsonout.member k j with
  | None -> default
  | Some (Jsonout.Str s) -> (
      match of_string s with
      | Some v -> v
      | None -> raise (Bad (Printf.sprintf "unknown %s %S" k s)))
  | Some _ -> raise (Bad (Printf.sprintf "field %S must be a string" k))

let request_of_json j =
  try
    let r = default_request in
    Ok
      {
        family = enum_field j "family" family_of_string r.family;
        partition = enum_field j "partition" partition_of_string r.partition;
        protocol = enum_field j "protocol" protocol_of_string r.protocol;
        n = int_field j "n" r.n;
        d = num_field j "d" r.d;
        k = int_field j "k" r.k;
        eps = num_field j "eps" r.eps;
        seed = int_field j "seed" r.seed;
        transport = enum_field j "transport" Wire_runtime.kind_of_string r.transport;
        fault =
          (let s = str_field j "fault" r.fault in
           match Fault.parse s with
           | Ok _ -> s
           | Error msg -> raise (Bad (Printf.sprintf "bad fault spec: %s" msg)));
      }
  with Bad msg -> Error msg

let response_to_json r =
  let verdict_fields =
    match r.verdict with
    | Tfree.Tester.Triangle (a, b, c) ->
        [
          ("verdict", Jsonout.Str "triangle");
          ( "witness",
            Jsonout.List
              [
                Jsonout.Num (float_of_int a); Jsonout.Num (float_of_int b);
                Jsonout.Num (float_of_int c);
              ] );
        ]
    | Tfree.Tester.Triangle_free -> [ ("verdict", Jsonout.Str "triangle-free") ]
  in
  let w = r.wire in
  Jsonout.Obj
    (("ok", Jsonout.Bool true)
     :: verdict_fields
    @ [
        ("bits", Jsonout.Num (float_of_int r.bits));
        ("rounds", Jsonout.Num (float_of_int r.rounds));
        ("max_message", Jsonout.Num (float_of_int r.max_message));
        ("wire_bytes", Jsonout.Num (float_of_int w.Wire_runtime.wire_bytes));
        ("frames", Jsonout.Num (float_of_int w.Wire_runtime.frames));
        ("payload_bits", Jsonout.Num (float_of_int w.Wire_runtime.payload_bits));
        ("framing_overhead_bits", Jsonout.Num (float_of_int w.Wire_runtime.framing_overhead_bits));
        ("accounted_bits", Jsonout.Num (float_of_int w.Wire_runtime.accounted_bits));
        ("ratio", Jsonout.Num w.Wire_runtime.ratio);
        ("reconciled", Jsonout.Bool (Wire_runtime.reconciles w));
      ])

let response_of_json j =
  try
    (match Jsonout.member "ok" j with
    | Some (Jsonout.Bool true) -> ()
    | _ ->
        let msg =
          match Jsonout.member "error" j with Some (Jsonout.Str s) -> s | _ -> "server error"
        in
        raise (Bad msg));
    let verdict =
      match Jsonout.member "verdict" j with
      | Some (Jsonout.Str "triangle-free") -> Tfree.Tester.Triangle_free
      | Some (Jsonout.Str "triangle") -> (
          match Jsonout.member "witness" j with
          | Some (Jsonout.List [ a; b; c ]) ->
              let v x =
                match Jsonout.to_float x with
                | Some f -> int_of_float f
                | None -> raise (Bad "witness must be three vertices")
              in
              Tfree.Tester.Triangle (v a, v b, v c)
          | _ -> raise (Bad "triangle verdict without witness"))
      | _ -> raise (Bad "missing verdict")
    in
    let i k = int_field j k 0 in
    Ok
      {
        verdict;
        bits = i "bits";
        rounds = i "rounds";
        max_message = i "max_message";
        wire =
          {
            Wire_runtime.wire_bytes = i "wire_bytes";
            frames = i "frames";
            payload_bits = i "payload_bits";
            framing_overhead_bits = i "framing_overhead_bits";
            accounted_bits = i "accounted_bits";
            ratio = num_field j "ratio" 0.0;
          };
      }
  with Bad msg -> Error msg

(* ------------------------------------------------- the instance cache *)

(* The fields of a request that determine the instance and its partition —
   and nothing else.  Protocol, transport and fault spec are deliberately
   absent: two requests that differ only in how the instance is *queried*
   share the cached build.  Correctness of sharing rests on [run_request]
   deriving both graph and partition from one [Rng.create seed] stream and
   running the protocol itself off a fresh [~seed], so a cache hit is
   bit-identical to a rebuild. *)
type instance_key = {
  key_family : family;
  key_partition : partition_kind;
  key_n : int;
  key_d : float;
  key_k : int;
  key_eps : float;
  key_seed : int;
}

type instance_cache = (instance_key, Graph.t * Partition.t) Lru.t

let create_cache ?(capacity = 32) () : instance_cache = Lru.create capacity

let key_of_request req =
  {
    key_family = req.family;
    key_partition = req.partition;
    key_n = req.n;
    key_d = req.d;
    key_k = req.k;
    key_eps = req.eps;
    key_seed = req.seed;
  }

let build_pair req =
  let rng = Rng.create req.seed in
  let g = build_instance req.family rng ~n:req.n ~d:req.d ~eps:req.eps in
  let inputs = build_partition req.partition rng ~k:req.k g in
  (g, inputs)

(* The cached instance/partition pair for [req], built on a miss.  Each call
   is one counted lookup; [metrics] mirrors the hit/miss into the server
   registry so [{"op": "stats"}] can report it. *)
let instance_pair ?cache ?metrics req =
  match cache with
  | None -> build_pair req
  | Some c ->
      let key = key_of_request req in
      let hit = Lru.mem c key in
      (match metrics with Some m -> Metrics.record_cache m ~hit | None -> ());
      Lru.find_or_add c key (fun () -> build_pair req)

(* ---------------------------------------------------------- run a query *)

(** Build the requested instance, run the requested protocol over a wire
    network, reconcile.  The whole execution is deterministic in the
    request's seed (and fault spec) — with or without [cache], whose hits
    return the identical graph/partition a rebuild would produce.  The
    network is closed even when an injected fault aborts the run, so a
    chaos loop cannot leak descriptors. *)
let run_request ?cache ?metrics req =
  let fault =
    match Fault.parse req.fault with
    | Ok s -> s
    | Error msg -> invalid_arg (Printf.sprintf "run_request: bad fault spec: %s" msg)
  in
  let g, inputs = instance_pair ?cache ?metrics req in
  let net = Wire_runtime.create ~fault ~transport:req.transport ~k:req.k () in
  Fun.protect
    ~finally:(fun () -> Wire_runtime.close net)
    (fun () ->
      let tap = Wire_runtime.tap net in
      let params = Tfree.Params.(with_eps practical req.eps) in
      let report =
        match req.protocol with
        | Unrestricted -> Tfree.Tester.unrestricted ~tap ~seed:req.seed params inputs
        | Sim ->
            Tfree.Tester.simultaneous ~tap ~seed:req.seed params ~d:(Graph.avg_degree g) inputs
        | Oblivious -> Tfree.Tester.simultaneous_oblivious ~tap ~seed:req.seed params inputs
        | Exact -> Tfree.Tester.exact ~tap ~seed:req.seed inputs
      in
      let wire = Wire_runtime.report net ~accounted_bits:report.Tfree.Tester.bits in
      {
        verdict = report.Tfree.Tester.verdict;
        bits = report.Tfree.Tester.bits;
        rounds = report.Tfree.Tester.rounds;
        max_message = report.Tfree.Tester.max_message;
        wire;
      })

(* ------------------------------------------------------- line transport *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write fd b !sent (n - !sent)
  done

let write_line fd s = write_all fd (s ^ "\n")

type line_read =
  | Line of string  (** a complete newline-terminated line *)
  | Eof  (** orderly close with nothing buffered *)
  | Partial of string  (** the peer vanished mid-line; never process this *)
  | Timed_out  (** the deadline expired before the newline arrived *)

(* Read one line byte-by-byte under a wall-clock deadline.  The select
   before every read keeps a silent or half-dead peer from pinning the
   server; a connection reset surfaces as [Partial]/[Eof] rather than an
   exception so the caller's accounting stays simple. *)
let read_line_deadline fd ~deadline =
  let buf = Buffer.create 256 in
  let one = Bytes.create 1 in
  let finish_eof () = if Buffer.length buf = 0 then Eof else Partial (Buffer.contents buf) in
  let rec loop () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then Timed_out
    else
      match Unix.select [ fd ] [] [] remaining with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ -> Timed_out
      | _ -> (
          match Unix.read fd one 0 1 with
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> finish_eof ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | 0 -> finish_eof ()
          | _ ->
              let c = Bytes.get one 0 in
              if c = '\n' then Line (Buffer.contents buf)
              else (
                Buffer.add_char buf c;
                loop ()))
  in
  loop ()

let read_line_fd ?(timeout_s = 30.0) fd =
  match read_line_deadline fd ~deadline:(Unix.gettimeofday () +. timeout_s) with
  | Line l -> Some l
  | Eof | Partial _ | Timed_out -> None

let error_obj ~category msg =
  Jsonout.Obj
    [
      ("ok", Jsonout.Bool false);
      ("error", Jsonout.Str msg);
      ("category", Jsonout.Str (Metrics.category_name category));
    ]

let error_line ~category msg = Jsonout.to_line (error_obj ~category msg)

let batch_request_to_json reqs =
  Jsonout.Obj
    [ ("op", Jsonout.Str "batch"); ("requests", Jsonout.List (List.map request_to_json reqs)) ]

(* Run one protocol query and shape its reply object; the [int] is 1 when
   the query was served (the unit the [max_requests] budget measures), 0 on
   a categorized failure.  Shared by the single-query and batch paths so a
   batch item's reply is byte-for-byte what the same request would get on
   its own line. *)
let run_one ?cache ~metrics req =
  let t0 = Unix.gettimeofday () in
  match run_request ?cache ~metrics req with
  | resp ->
      Metrics.record_query metrics
        ~protocol:(protocol_to_string req.protocol)
        ~found_triangle:
          (match resp.verdict with
          | Tfree.Tester.Triangle _ -> true
          | Tfree.Tester.Triangle_free -> false)
        ~wire_bytes:resp.wire.Wire_runtime.wire_bytes
        ~accounted_bits:resp.wire.Wire_runtime.accounted_bits
        ~latency_us:((Unix.gettimeofday () -. t0) *. 1e6);
      (response_to_json resp, 1)
  | exception Wire_error.Wire_error k ->
      let category = Metrics.category_of_name (Wire_error.category k) in
      Metrics.record_error metrics ~category;
      (error_obj ~category (Wire_error.message k), 0)
  | exception e ->
      Metrics.record_error metrics ~category:Metrics.Run_failure;
      (error_obj ~category:Metrics.Run_failure (Printexc.to_string e), 0)

(* One request line -> one reply line.  Sets [stop] on a shutdown command;
   returns how many protocol queries the line served (the unit the
   [max_requests] budget and the served counter measure — 0 or 1 for a
   plain line, up to the item count for a batch).  All failure shapes —
   unparseable JSON, unknown command or op, bad request field, a run that
   raises — reply with a structured, categorized error and record it under
   that category; the connection stays usable either way.  A wire fault
   surfacing from the run keeps its own category (timeout/transport) so an
   operator can tell chaos from bad input.  Inside a batch, failures are
   per-item: each element of [results] is exactly the reply the request
   would have gotten on its own line, errors included. *)
let handle_line ?cache ~metrics ~stop line =
  let err category msg =
    Metrics.record_error metrics ~category;
    (error_line ~category msg, 0)
  in
  match Jsonout.parse line with
  | Error msg -> err Metrics.Malformed ("bad JSON: " ^ msg)
  | Ok j -> (
      match (Jsonout.member "cmd" j, Jsonout.member "op" j) with
      | Some (Jsonout.Str "shutdown"), _ ->
          stop := true;
          (Jsonout.to_line (Jsonout.Obj [ ("ok", Jsonout.Bool true); ("bye", Jsonout.Bool true) ]), 0)
      | Some (Jsonout.Str c), _ -> err Metrics.Malformed (Printf.sprintf "unknown command %S" c)
      | Some _, _ -> err Metrics.Malformed "cmd must be a string"
      | None, Some (Jsonout.Str "stats") ->
          ( Jsonout.to_line
              (Jsonout.Obj [ ("ok", Jsonout.Bool true); ("stats", Metrics.to_json metrics) ]),
            0 )
      | None, Some (Jsonout.Str "batch") -> (
          match Jsonout.member "requests" j with
          | Some (Jsonout.List items) ->
              Metrics.record_batch metrics ~items:(List.length items);
              let served = ref 0 in
              let results =
                List.map
                  (fun item ->
                    match request_of_json item with
                    | Error msg ->
                        Metrics.record_error metrics ~category:Metrics.Malformed;
                        error_obj ~category:Metrics.Malformed msg
                    | Ok req ->
                        let obj, n = run_one ?cache ~metrics req in
                        served := !served + n;
                        obj)
                  items
              in
              ( Jsonout.to_line
                  (Jsonout.Obj
                     [
                       ("ok", Jsonout.Bool true);
                       ("count", Jsonout.Num (float_of_int (List.length results)));
                       ("results", Jsonout.List results);
                     ]),
                !served )
          | Some _ -> err Metrics.Malformed "batch field \"requests\" must be a list"
          | None -> err Metrics.Malformed "batch without a \"requests\" list")
      | None, Some (Jsonout.Str o) -> err Metrics.Unknown_op (Printf.sprintf "unknown op %S" o)
      | None, Some _ -> err Metrics.Malformed "op must be a string"
      | None, None -> (
          match request_of_json j with
          | Error msg -> err Metrics.Malformed msg
          | Ok req ->
              let obj, n = run_one ?cache ~metrics req in
              (Jsonout.to_line obj, n)))

(* Reply-level fault injection: the [op]-th reply the server writes (0-based
   across the whole server lifetime) suffers the scheduled fault.  [Drop]
   and [Close] cost the client its connection; [Corrupt] garbles one bit of
   the line body (the newline survives, so the client reads a line that
   fails to parse); [Truncate] sends a proper prefix and closes; [Delay]
   holds the reply [amount] milliseconds; [Partial] splits the write in two
   (same bytes — the client must not notice).  Every firing bumps the
   injected-fault tally, never the error counters: the fault is ours. *)
let inject_reply ~metrics ~fault ~op fd reply =
  match Fault.find fault op with
  | None ->
      write_line fd reply;
      `Keep
  | Some kind -> (
      Metrics.record_injected metrics;
      match kind with
      | Fault.Drop | Fault.Close -> `Close
      | Fault.Corrupt { bit } ->
          let b = Bytes.of_string reply in
          let nbits = 8 * Bytes.length b in
          if nbits > 0 then begin
            let i = ((bit mod nbits) + nbits) mod nbits in
            let byte = i / 8 and off = i mod 8 in
            Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl off)))
          end;
          write_line fd (Bytes.to_string b);
          `Keep
      | Fault.Truncate { keep } ->
          let s = reply ^ "\n" in
          write_all fd (String.sub s 0 (min (max keep 0) (max 0 (String.length s - 1))));
          `Close
      | Fault.Delay { amount } ->
          Unix.sleepf (float_of_int (max amount 0) /. 1000.0);
          write_line fd reply;
          `Keep
      | Fault.Partial { at } ->
          let s = reply ^ "\n" in
          let cut = max 1 (min at (String.length s - 1)) in
          write_all fd (String.sub s 0 cut);
          write_all fd (String.sub s cut (String.length s - cut));
          `Keep)

(* One open connection in the event loop: its descriptor, the bytes read
   so far that do not yet end in a newline, and the wall-clock instant by
   which the next newline must arrive. *)
type conn = {
  conn_fd : Unix.file_descr;
  pending : Buffer.t;
  mutable deadline : float;
  mutable conn_open : bool;
}

(* A connection that streams garbage without newlines must not grow its
   buffer forever; past this it is shed with a malformed error. *)
let max_line_bytes = 8 * 1024 * 1024

(** Serve requests on a Unix-domain socket at [path] until a shutdown
    command (or [max_requests] queries) arrives.  Returns the number of
    queries served (batch items each count).

    The server is a single-threaded select event loop, so many clients can
    hold connections open concurrently: each owns a read buffer and a
    rolling per-line deadline of [line_timeout_s], and a client that stalls
    mid-line times out alone without blocking anyone else.  [backlog] is
    the kernel accept queue; at most [max_clients] connections are open at
    once — one over the cap is answered immediately with an
    [overload]-category error and closed, never left hanging.  Instances
    and partitions are memoized in an LRU of [cache_capacity] entries
    ([0] disables caching).  [fault] injects scheduled faults into the
    server's own replies (chaos testing the client's retry path); the
    fault schedule indexes replies globally across all connections, in the
    order the loop writes them.

    No client behaviour — killed mid-line, flooding garbage, going silent
    — takes the daemon down; each costs a categorized error counter and at
    worst its own connection. *)
let serve ?(backlog = 64) ?(max_clients = 64) ?max_requests ?(line_timeout_s = 30.0)
    ?(fault = []) ?(cache_capacity = 32) ~path () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    try Unix.unlink path with Unix.Unix_error _ -> ()
  in
  (try
     Unix.bind sock (Unix.ADDR_UNIX path);
     Unix.listen sock backlog;
     (* select may report the listener readable for a connection that was
        aborted before we accept; nonblocking turns that race into EAGAIN *)
     Unix.set_nonblock sock
   with e ->
     cleanup ();
     raise e);
  let metrics = Metrics.create () in
  let cache = if cache_capacity <= 0 then None else Some (create_cache ~capacity:cache_capacity ()) in
  let served = ref 0 and stop = ref false and reply_op = ref 0 in
  let budget_left () = match max_requests with None -> true | Some m -> !served < m in
  let conns = ref [] in
  let transport_error () = Metrics.record_error metrics ~category:Metrics.Transport in
  let close_conn c =
    if c.conn_open then begin
      c.conn_open <- false;
      try Unix.close c.conn_fd with Unix.Unix_error _ -> ()
    end
  in
  let prune () =
    let live = List.filter (fun c -> c.conn_open) !conns in
    conns := live;
    Metrics.set_in_flight metrics (List.length live)
  in
  let accept_one () =
    match Unix.accept sock with
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | fd, _ ->
        if List.length !conns >= max_clients then begin
          (* shed: a typed refusal, then close — the client sees a reply,
             not a hang, and its retry loop treats overload as transient *)
          Metrics.record_shed metrics;
          Metrics.record_error metrics ~category:Metrics.Overload;
          (try
             write_line fd
               (error_line ~category:Metrics.Overload
                  (Printf.sprintf "server at capacity (%d clients); retry later" max_clients))
           with Unix.Unix_error _ -> ());
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
        else begin
          Metrics.record_accept metrics;
          conns :=
            {
              conn_fd = fd;
              pending = Buffer.create 256;
              deadline = Unix.gettimeofday () +. line_timeout_s;
              conn_open = true;
            }
            :: !conns;
          Metrics.set_in_flight metrics (List.length !conns)
        end
  in
  let handle_one c line =
    match handle_line ?cache ~metrics ~stop line with
    | exception e ->
        Metrics.record_error metrics ~category:Metrics.Run_failure;
        (try write_line c.conn_fd (error_line ~category:Metrics.Run_failure (Printexc.to_string e))
         with Unix.Unix_error _ -> ());
        close_conn c
    | reply, nserved -> (
        let op = !reply_op in
        incr reply_op;
        match inject_reply ~metrics ~fault ~op c.conn_fd reply with
        | `Keep -> served := !served + nserved
        | `Close ->
            served := !served + nserved;
            close_conn c
        | exception Unix.Unix_error _ ->
            (* the peer closed before the reply landed *)
            transport_error ();
            close_conn c)
  in
  (* Split off and handle every complete line in [c]'s buffer; keep the
     unterminated tail for the next readable event.  Each complete line
     rolls the deadline forward. *)
  let drain_buffer c =
    let data = Buffer.contents c.pending in
    let len = String.length data in
    let pos = ref 0 in
    let scanning = ref true in
    while !scanning && !pos < len do
      match String.index_from_opt data !pos '\n' with
      | None -> scanning := false
      | Some nl ->
          let line = String.sub data !pos (nl - !pos) in
          pos := nl + 1;
          c.deadline <- Unix.gettimeofday () +. line_timeout_s;
          if (not !stop) && budget_left () then handle_one c line;
          if (not c.conn_open) || !stop then scanning := false
    done;
    if c.conn_open then begin
      let rest = String.sub data !pos (len - !pos) in
      Buffer.clear c.pending;
      Buffer.add_string c.pending rest;
      if Buffer.length c.pending > max_line_bytes then begin
        Metrics.record_error metrics ~category:Metrics.Malformed;
        (try write_line c.conn_fd (error_line ~category:Metrics.Malformed "request line too long")
         with Unix.Unix_error _ -> ());
        close_conn c
      end
    end
  in
  let chunk = Bytes.create 4096 in
  let on_eof c =
    (* the client died mid-line; a half request is not a request *)
    if Buffer.length c.pending > 0 then transport_error ();
    close_conn c
  in
  let service_conn c =
    match Unix.read c.conn_fd chunk 0 (Bytes.length chunk) with
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> on_eof c
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ ->
        transport_error ();
        close_conn c
    | 0 -> on_eof c
    | nread ->
        Buffer.add_subbytes c.pending chunk 0 nread;
        drain_buffer c
  in
  let expire_deadlines now =
    List.iter
      (fun c ->
        if c.conn_open && c.deadline <= now then begin
          Metrics.record_error metrics ~category:Metrics.Timeout;
          (try write_line c.conn_fd (error_line ~category:Metrics.Timeout "read timed out")
           with Unix.Unix_error _ -> ());
          close_conn c
        end)
      !conns
  in
  while (not !stop) && budget_left () do
    let now = Unix.gettimeofday () in
    expire_deadlines now;
    prune ();
    let timeout =
      List.fold_left (fun acc c -> Float.min acc (c.deadline -. now)) Float.infinity !conns
    in
    let timeout = if timeout = Float.infinity then -1.0 else Float.max 0.0 timeout in
    let fds = sock :: List.map (fun c -> c.conn_fd) !conns in
    match Unix.select fds [] [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        if List.mem sock ready then accept_one ();
        List.iter
          (fun c ->
            if c.conn_open && (not !stop) && budget_left () && List.mem c.conn_fd ready then
              (try service_conn c
               with _ ->
                 transport_error ();
                 close_conn c))
          !conns;
        prune ()
  done;
  List.iter close_conn !conns;
  prune ();
  cleanup ();
  !served

(* ---------------------------------------------------------------- client *)

let with_connection ~path f =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_UNIX path);
      f sock)

(* Is a structured [{"ok": false}] reply worth retrying?  Only when its
   category describes the wire or the server's load, not the request:
   timeout, transport and overload pass, everything else is the server
   telling us the request itself is wrong. *)
let reply_error j =
  let msg =
    match Jsonout.member "error" j with Some (Jsonout.Str s) -> s | _ -> "server error"
  in
  let transient =
    match Jsonout.member "category" j with
    | Some (Jsonout.Str ("timeout" | "transport" | "overload")) -> true
    | _ -> false
  in
  ((if transient then `Transient else `Fatal), msg)

(* One connect/write/read attempt, classified: [`Transient] failures are
   worth retrying (the server may be restarting or shedding load, the reply
   may have been garbled by a fault), [`Fatal] ones are the server telling
   us the request itself is wrong.  [interpret] turns the parsed reply of a
   successful exchange into the caller's result. *)
let attempt_exchange ~timeout_s ~path ~line ~interpret =
  match
    with_connection ~path (fun sock ->
        write_line sock line;
        match read_line_deadline sock ~deadline:(Unix.gettimeofday () +. timeout_s) with
        | Eof | Partial _ -> Error (`Transient, "server closed the connection")
        | Timed_out -> Error (`Transient, "reply timed out")
        | Line reply -> (
            match Jsonout.parse reply with
            | Error msg -> Error (`Transient, "bad reply JSON: " ^ msg)
            | Ok j -> (
                match Jsonout.member "ok" j with
                | Some (Jsonout.Bool false) -> Error (reply_error j)
                | _ -> interpret j)))
  with
  | v -> v
  | exception Unix.Unix_error (e, fn, _) ->
      Error (`Transient, Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | exception Wire_error.Wire_error k -> Error (`Transient, Wire_error.message k)

(* The shared retry envelope: transient failures back off exponentially
   ([backoff_s · 2^attempt] plus up to 25% jitter, deterministic in
   [backoff_seed]) and try the whole exchange again, tallying each retry in
   [metrics] when given; fatal ones return immediately. *)
let with_retries ~retries ~backoff_s ~backoff_seed ~metrics attempt =
  let rng = Rng.create (0xc11e47 + (31 * backoff_seed)) in
  let rec go n =
    match attempt () with
    | Ok v -> Ok v
    | Error (`Fatal, msg) -> Error msg
    | Error (`Transient, msg) ->
        if n >= retries then Error msg
        else begin
          (match metrics with Some m -> Metrics.record_retry m | None -> ());
          let base = backoff_s *. (2.0 ** float_of_int n) in
          Unix.sleepf (base +. (base *. 0.25 *. Rng.float rng));
          go (n + 1)
        end
  in
  go 0

(** Send one request to a server at [path]; wait up to [timeout_s] for the
    reply.  Transient failures retry up to [retries] more times with
    exponential backoff ([backoff_s · 2^attempt] plus up to 25% jitter,
    deterministic in [backoff_seed]); each retry is tallied in [metrics]
    when given.  Fatal server rejections return immediately. *)
let client_query ?(timeout_s = 30.0) ?(retries = 0) ?(backoff_s = 0.05) ?(backoff_seed = 0)
    ?metrics ~path req =
  with_retries ~retries ~backoff_s ~backoff_seed ~metrics (fun () ->
      attempt_exchange ~timeout_s ~path
        ~line:(Jsonout.to_line (request_to_json req))
        ~interpret:(fun j ->
          match response_of_json j with
          | Ok resp -> Ok resp
          | Error msg -> Error (`Transient, "garbled reply: " ^ msg)))

(** Send [reqs] as one [{"op": "batch"}] exchange — one line out, one line
    back — and return per-item results in request order.  The retry
    envelope is the same as {!client_query}'s and covers the whole
    exchange: a garbled or truncated batch reply retries everything, while
    a structured per-item error (bad request inside an otherwise healthy
    batch) is that item's final [Error].  An empty [reqs] is one empty
    round trip. *)
let client_batch ?(timeout_s = 30.0) ?(retries = 0) ?(backoff_s = 0.05) ?(backoff_seed = 0)
    ?metrics ~path reqs =
  with_retries ~retries ~backoff_s ~backoff_seed ~metrics (fun () ->
      attempt_exchange ~timeout_s ~path
        ~line:(Jsonout.to_line (batch_request_to_json reqs))
        ~interpret:(fun j ->
          match Jsonout.member "results" j with
          | Some (Jsonout.List items) when List.length items = List.length reqs ->
              Ok
                (List.map
                   (fun item ->
                     match Jsonout.member "ok" item with
                     | Some (Jsonout.Bool false) -> Error (snd (reply_error item))
                     | _ -> (
                         match response_of_json item with
                         | Ok resp -> Ok resp
                         | Error msg -> Error ("garbled batch item: " ^ msg)))
                   items)
          | Some (Jsonout.List items) ->
              Error
                ( `Transient,
                  Printf.sprintf "garbled reply: %d results for %d requests" (List.length items)
                    (List.length reqs) )
          | _ -> Error (`Transient, "garbled reply: batch reply without results")))

(** Fetch the server's telemetry ([{"op": "stats"}]); returns the [stats]
    object of the reply. *)
let client_stats ?(timeout_s = 30.0) ~path () =
  with_connection ~path (fun sock ->
      write_line sock (Jsonout.to_line (Jsonout.Obj [ ("op", Jsonout.Str "stats") ]));
      match read_line_fd ~timeout_s sock with
      | None -> Error "server closed the connection"
      | Some line -> (
          match Jsonout.parse line with
          | Error msg -> Error ("bad reply JSON: " ^ msg)
          | Ok j -> (
              match (Jsonout.member "ok" j, Jsonout.member "stats" j) with
              | Some (Jsonout.Bool true), Some stats -> Ok stats
              | _ ->
                  Error
                    (match Jsonout.member "error" j with
                    | Some (Jsonout.Str s) -> s
                    | _ -> "server error"))))

(** Ask a server at [path] to shut down. *)
let client_shutdown ~path =
  with_connection ~path (fun sock ->
      write_line sock (Jsonout.to_line (Jsonout.Obj [ ("cmd", Jsonout.Str "shutdown") ]));
      ignore (read_line_fd sock))
