(** Bit-granular I/O over byte buffers.

    The cost model charges messages in bits, not bytes ({!Tfree_util.Bits}),
    so the wire codec must be able to emit a 1-bit boolean as one bit.  The
    writer packs bits MSB-first into bytes; the reader walks the same stream.
    Padding to the byte boundary happens only once per frame, at
    {!to_bytes}, and is accounted as framing overhead by the caller — never
    folded into the payload. *)

type writer = {
  buf : Buffer.t;
  mutable acc : int;  (* pending bits, left-aligned as they arrive *)
  mutable pending : int;  (* number of pending bits in [acc], < 8 *)
  mutable written : int;  (* total bits written *)
}

let writer () = { buf = Buffer.create 64; acc = 0; pending = 0; written = 0 }

let bits_written w = w.written

let put_bit w b =
  w.acc <- (w.acc lsl 1) lor (if b then 1 else 0);
  w.pending <- w.pending + 1;
  w.written <- w.written + 1;
  if w.pending = 8 then begin
    Buffer.add_char w.buf (Char.chr w.acc);
    w.acc <- 0;
    w.pending <- 0
  end

(** Write [v] in exactly [width] bits, most significant first.
    @raise Invalid_argument if [v] needs more than [width] bits. *)
let put_bits w ~width v =
  if width < 0 || width > 62 then invalid_arg "Bitio.put_bits: width out of range";
  if v < 0 || (width < 62 && v lsr width <> 0) then
    invalid_arg "Bitio.put_bits: value does not fit width";
  for i = width - 1 downto 0 do
    put_bit w ((v lsr i) land 1 = 1)
  done

(** Elias-gamma code for a nonnegative integer: exactly
    {!Tfree_util.Bits.elias_gamma}[ v] bits. *)
let put_gamma w v =
  if v < 0 then invalid_arg "Bitio.put_gamma: negative";
  let x = v + 1 in
  let rec log2floor acc y = if y <= 1 then acc else log2floor (acc + 1) (y lsr 1) in
  let nb = log2floor 0 x in
  for _ = 1 to nb do
    put_bit w false
  done;
  put_bits w ~width:(nb + 1) x

(** Flush to bytes, zero-padding the last partial byte on the right.  The
    pad is [8*|bytes| - bits_written] bits of framing overhead. *)
let to_bytes w =
  if w.pending > 0 then begin
    Buffer.add_char w.buf (Char.chr (w.acc lsl (8 - w.pending)));
    w.acc <- 0;
    w.pending <- 0
  end;
  Buffer.to_bytes w.buf

type reader = { data : Bytes.t; off : int; mutable pos : int; limit : int }

(** Read bits from [len] bytes of [data] starting at byte [off]. *)
let reader ?(off = 0) ?len data =
  let len = match len with Some l -> l | None -> Bytes.length data - off in
  { data; off; pos = 0; limit = len * 8 }

let bits_read r = r.pos

let get_bit r =
  if r.pos >= r.limit then invalid_arg "Bitio.get_bit: past end of stream";
  let byte = Char.code (Bytes.get r.data (r.off + (r.pos lsr 3))) in
  let b = (byte lsr (7 - (r.pos land 7))) land 1 in
  r.pos <- r.pos + 1;
  b = 1

let get_bits r ~width =
  if width < 0 || width > 62 then invalid_arg "Bitio.get_bits: width out of range";
  let v = ref 0 in
  for _ = 1 to width do
    v := (!v lsl 1) lor (if get_bit r then 1 else 0)
  done;
  !v

let get_gamma r =
  let nb = ref 0 in
  while not (get_bit r) do
    incr nb
  done;
  (* the 1 bit just consumed is the MSB of x *)
  let rest = get_bits r ~width:!nb in
  ((1 lsl !nb) lor rest) - 1
