(** tfree-serve: a triangle-freeness query service over Unix-domain
    sockets.  One JSON value per line in both directions; a request names
    an instance family, an edge partition and a protocol (the same enums
    the tfree CLI exposes), the reply carries the verdict, the accounted
    bits and the measured wire traffic, reconciled. *)

open Tfree_util
open Tfree_graph

(** {2 The CLI's enums, shared with [bin/main.ml]} *)

type family = Far | Free | Hub | Mu | Gnp | Behrend | Diluted
type partition_kind = Disjoint | Dup | Replicate | Skewed | Hash
type protocol = Unrestricted | Sim | Oblivious | Exact

val family_to_string : family -> string
val family_of_string : string -> family option
val partition_to_string : partition_kind -> string
val partition_of_string : string -> partition_kind option
val protocol_to_string : protocol -> string
val protocol_of_string : string -> protocol option

(** The instance generators behind the [--instance] flag. *)
val build_instance : family -> Rng.t -> n:int -> d:float -> eps:float -> Graph.t

(** The edge partitions behind the [--partition] flag. *)
val build_partition : partition_kind -> Rng.t -> k:int -> Graph.t -> Partition.t

(** {2 Requests and responses} *)

type request = {
  family : family;
  partition : partition_kind;
  protocol : protocol;
  n : int;
  d : float;
  k : int;
  eps : float;
  seed : int;
  transport : Wire_runtime.kind;  (** transport behind the server's tap *)
}

(** far/dup/oblivious, n=300 d=6 k=4 eps=0.1 seed=1, pipe transport; a
    request JSON object may omit any field to take its default. *)
val default_request : request

type response = {
  verdict : Tfree.Tester.verdict;
  bits : int;  (** accounted communication (the cost model) *)
  rounds : int;
  max_message : int;
  wire : Wire_runtime.report;  (** measured wire traffic, reconciled *)
}

val request_to_json : request -> Jsonout.t
val request_of_json : Jsonout.t -> (request, string) result
val response_to_json : response -> Jsonout.t
val response_of_json : Jsonout.t -> (response, string) result

(** Build the requested instance, run the requested protocol over a wire
    network, reconcile.  Deterministic in the request's seed. *)
val run_request : request -> response

(** {2 Server and client} *)

(** Serve requests on a Unix-domain socket at [path] until a
    [{"cmd": "shutdown"}] line (or [max_requests] successfully served
    protocol queries) arrives.  Returns the number of queries served.
    Malformed or failing lines get a structured [{"ok": false, "error": ...}]
    reply — the connection stays usable — and are tallied in the server's
    {!Metrics} registry, which a [{"op": "stats"}] line returns. *)
val serve : ?max_requests:int -> path:string -> unit -> int

(** Send one request to a server at [path]; wait for the reply. *)
val client_query : path:string -> request -> (response, string) result

(** Fetch the server's telemetry ([{"op": "stats"}] query); returns the
    [stats] object of the reply (see {!Metrics.to_json} for its shape). *)
val client_stats : path:string -> (Jsonout.t, string) result

(** Ask a server at [path] to shut down. *)
val client_shutdown : path:string -> unit
