(** tfree-serve: a triangle-freeness query service over Unix-domain
    sockets.  One JSON value per line in both directions; a request names
    an instance family, an edge partition and a protocol (the same enums
    the tfree CLI exposes), the reply carries the verdict, the accounted
    bits and the measured wire traffic, reconciled.

    The server is a single-threaded select event loop: many concurrent
    clients, each with its own read buffer and per-line deadline; bounded
    admission with typed overload shedding; an LRU instance/partition
    cache; and an [{"op": "batch"}] exchange amortizing the framing over
    many queries.  It degrades, never dies: malformed lines, clients
    killed mid-request, silent clients and dead reply sockets each cost
    one categorized {!Metrics} error counter and at worst that one
    connection.  The client retries transient failures with exponential
    backoff and deterministic jitter. *)

open Tfree_util
open Tfree_graph

(** {2 The CLI's enums, shared with [bin/main.ml]} *)

type family = Far | Free | Hub | Mu | Gnp | Behrend | Diluted
type partition_kind = Disjoint | Dup | Replicate | Skewed | Hash
type protocol = Unrestricted | Sim | Oblivious | Exact

val family_to_string : family -> string
val family_of_string : string -> family option
val partition_to_string : partition_kind -> string
val partition_of_string : string -> partition_kind option
val protocol_to_string : protocol -> string
val protocol_of_string : string -> protocol option

(** The instance generators behind the [--instance] flag. *)
val build_instance : family -> Rng.t -> n:int -> d:float -> eps:float -> Graph.t

(** The edge partitions behind the [--partition] flag. *)
val build_partition : partition_kind -> Rng.t -> k:int -> Graph.t -> Partition.t

(** {2 Requests and responses} *)

type request = {
  family : family;
  partition : partition_kind;
  protocol : protocol;
  n : int;
  d : float;
  k : int;
  eps : float;
  seed : int;
  transport : Wire_runtime.kind;  (** transport behind the server's tap *)
  fault : string;
      (** {!Fault.parse} spec injected below the framing of the run's own
          wire network; [""] = none.  Validated when the request parses. *)
}

(** far/dup/oblivious, n=300 d=6 k=4 eps=0.1 seed=1, pipe transport, no
    fault; a request JSON object may omit any field to take its default. *)
val default_request : request

(** A [{"op": "dataset"}] query: run [ds_protocol] over the registered
    dataset [ds_name], partitioned by [ds_partition]/[ds_k] under
    [ds_seed].  Same query vocabulary as {!request} minus the generator
    fields (family/n/d), which the registry supersedes. *)
type dataset_request = {
  ds_name : string;
  ds_partition : partition_kind;
  ds_protocol : protocol;
  ds_k : int;
  ds_eps : float;
  ds_seed : int;
  ds_transport : Wire_runtime.kind;
  ds_fault : string;
}

(** dup/oblivious, k=4 eps=0.1 seed=1, pipe transport, no fault. *)
val default_dataset_request : name:string -> dataset_request

type response = {
  verdict : Tfree.Tester.verdict;
  bits : int;  (** accounted communication (the cost model) *)
  rounds : int;
  max_message : int;
  wire : Wire_runtime.report;  (** measured wire traffic, reconciled *)
}

val request_to_json : request -> Jsonout.t
val request_of_json : Jsonout.t -> (request, string) result

(** The [{"op": "dataset"}] object; a missing field takes its default,
    [name] is required and must be non-empty. *)
val dataset_request_to_json : dataset_request -> Jsonout.t

val dataset_request_of_json : Jsonout.t -> (dataset_request, string) result
val response_to_json : response -> Jsonout.t
val response_of_json : Jsonout.t -> (response, string) result

(** The [{"op": "batch", "requests": [...]}] object for a request list. *)
val batch_request_to_json : request list -> Jsonout.t

(** {2 Binary protocol v2 layouts}

    The same shapes as fixed binary layouts inside {!Proto} frames: one
    tag byte, zigzag varints for integers, little-endian binary64 for
    floats, varint-length-prefixed strings.  Encoders poke into a
    caller-owned {!Proto.buf} (sealing a complete frame); decoders read a
    {!Proto.cursor} positioned past the tag byte.  Structural decode
    failures raise {!Wire_error.Wire_error}; semantic ones (enum code out
    of range, bad fault spec) return [Error msg]. *)

val tag_query : int
val tag_reply : int
val tag_error : int
val tag_batch : int
val tag_batch_reply : int
val tag_stats : int
val tag_stats_reply : int
val tag_shutdown : int
val tag_bye : int
val tag_dataset : int
val tag_health : int
val tag_health_reply : int

val encode_query_frame : Proto.buf -> request -> unit
val encode_dataset_frame : Proto.buf -> dataset_request -> unit
val encode_batch_frame : Proto.buf -> request list -> unit
val encode_response_frame : Proto.buf -> response -> unit

(** The all-ok batch reply frame, byte-identical to the server's when
    every item serves (used to account wire bytes without a tap). *)
val encode_batch_reply_frame : Proto.buf -> response list -> unit
val encode_error_frame : Proto.buf -> category:Metrics.error_category -> string -> unit
val decode_request_body : Proto.cursor -> (request, string) result
val decode_dataset_request_body : Proto.cursor -> (dataset_request, string) result

(** @raise Wire_error.Wire_error on a garbled layout. *)
val decode_response_body : Proto.cursor -> response

(** {2 The instance cache}

    Requests that agree on every instance-determining field share one
    build of the graph and its partition; protocol, transport and fault
    spec are excluded from the key because they only affect how the
    instance is queried.  Generated instances key on family, partition,
    n, d, k, eps and seed; dataset-backed instances key on the dataset
    name, partition, k and seed.  A hit is bit-identical to a rebuild:
    the graph comes from {!graph_rng} (or from disk) and the partition
    from the independent {!partition_rng} stream, and the protocol run
    seeds itself independently. *)

type instance_key =
  | Key_generated of {
      key_family : family;
      key_partition : partition_kind;
      key_n : int;
      key_d : float;
      key_k : int;
      key_eps : float;
      key_seed : int;
    }
  | Key_dataset of {
      key_name : string;
      key_ds_partition : partition_kind;
      key_ds_k : int;
      key_ds_seed : int;
    }

type instance_cache = (instance_key, Graph.t * Partition.t) Lru.t

val create_cache : ?capacity:int -> unit -> instance_cache
val key_of_request : request -> instance_key
val key_of_dataset_request : dataset_request -> instance_key

(** {2 Fleet sharding}

    A fleet routes every request to the worker owning its instance key,
    so each worker's LRU sees only its own shard and stays hot.  The hash
    is FNV-1a over a canonical rendering of {e every} field of the key
    (floats in exact hex) — deterministic across processes, builds and
    runs, unlike [Hashtbl.hash]; both key arms hash with distinct
    prefixes. *)

(** The deterministic hash of a key: nonnegative, stable across
    processes. *)
val shard_key : instance_key -> int

(** [shard_key] reduced mod [workers] ([0] when [workers <= 1]). *)
val shard_of_key : workers:int -> instance_key -> int

val shard_of_request : workers:int -> request -> int
val shard_of_dataset_request : workers:int -> dataset_request -> int

(** The shard socket path of fleet worker [i] under a fleet serving
    [path]: [path.w<i>]. *)
val worker_path : path:string -> int -> string

(** The graph generator's rng stream for [seed]. *)
val graph_rng : int -> Rng.t

(** The edge partition's rng stream for [seed] — independent of
    {!graph_rng}, so a dataset-backed run (whose graph comes from disk
    and consumes no randomness) partitions identically to a generated
    run of the same seed. *)
val partition_rng : int -> Rng.t

(** The cached instance/partition pair for a request (built on a miss; one
    counted lookup per call, mirrored into [metrics] when given).  Without
    [cache], always builds. *)
val instance_pair : ?cache:instance_cache -> ?metrics:Metrics.t -> request -> Graph.t * Partition.t

(** The cached graph/partition pair for a dataset request: the graph from
    the registry (itself memoized), the partition from {!partition_rng}.
    @raise Tfree_dataset.Dataset_error.Dataset_error when the dataset is
    unknown or its file fails to load. *)
val dataset_pair :
  ?cache:instance_cache ->
  ?metrics:Metrics.t ->
  registry:Tfree_dataset.Registry.t ->
  dataset_request ->
  Graph.t * Partition.t

(** Build the requested instance, run the requested protocol over a wire
    network (under the request's fault schedule, if any), reconcile.
    Deterministic in the request's seed and fault spec — with or without
    [cache], whose hits return the identical graph/partition a rebuild
    would produce; the network is closed even when a fault aborts the run.
    @raise Wire_error.Wire_error when an injected fault aborts the run. *)
val run_request : ?cache:instance_cache -> ?metrics:Metrics.t -> request -> response

(** {!run_request} over a registered dataset: same protocol run, same
    reply shape, graph from the registry instead of a generator.  A
    dataset-backed response is byte-identical to the generated response
    of the same seed when the dataset holds that generator's graph.
    @raise Wire_error.Wire_error when an injected fault aborts the run.
    @raise Tfree_dataset.Dataset_error.Dataset_error on a registry or
    load failure. *)
val run_dataset_request :
  ?cache:instance_cache ->
  ?metrics:Metrics.t ->
  registry:Tfree_dataset.Registry.t ->
  dataset_request ->
  response

(** {2 Server and client} *)

(** One line read off a socket under a deadline. *)
type line_read =
  | Line of string  (** a complete newline-terminated line *)
  | Eof  (** orderly close with nothing buffered *)
  | Partial of string  (** the peer vanished mid-line; never process this *)
  | Timed_out  (** the deadline expired before the newline arrived *)

(** Read one newline-terminated line under a wall-clock [deadline]
    (absolute, as from [Unix.gettimeofday]).  Connection resets surface as
    [Eof]/[Partial], never an exception. *)
val read_line_deadline : Unix.file_descr -> deadline:float -> line_read

(** Fleet delegation hooks for {!handle_line}: a fleet worker's
    stats/health ops must describe the whole fleet, not one shard, so the
    dispatcher lets the fleet layer substitute those two payloads.
    [None] from a hook (the fleet parent was unreachable) falls back to
    the local registry. *)
type serve_hooks = {
  hook_stats : unit -> Jsonout.t option;
  hook_health : unit -> Jsonout.t option;
}

(** One request line to one reply line against [metrics]; sets [stop] on a
    shutdown command.  Returns the reply and how many protocol queries the
    line served — 0 or 1 for a plain line, up to the item count for an
    [{"op": "batch"}] line (whose [results] hold one reply object per
    request, in order, per-item errors included).  Every failure shape
    replies with a structured [{"ok": false, "error": ..., "category":
    ...}] and records the error under its {!Metrics.error_category};
    nothing escapes.  [version] is the wire-protocol version of the
    serving connection (default 1), feeding the per-version served
    gauge.  [registry] enables [{"op": "dataset"}] lines; without it they
    answer a structured unknown-op error.  [hooks] overrides the
    stats/health payloads ({!serve_hooks}). *)
val handle_line :
  ?cache:instance_cache ->
  ?registry:Tfree_dataset.Registry.t ->
  ?hooks:serve_hooks ->
  metrics:Metrics.t ->
  stop:bool ref ->
  ?version:int ->
  string ->
  string * int

(** Serve requests on a Unix-domain socket at [path] until a
    [{"cmd": "shutdown"}] line (or [max_requests] successfully served
    protocol queries — batch items each count) arrives.  Returns the
    number of queries served.

    The server is a single-threaded poll event loop ({!Evpoll} — no
    FD_SETSIZE ceiling, so descriptor counts past 1024 are fine): every
    open connection owns a read buffer and a rolling per-line deadline of
    [line_timeout_s] (default 30), so a slow or silent client costs a
    [Timeout] error and its own connection while everyone else keeps being
    served.  [backlog] (default 64) sizes the kernel accept queue; at most
    [max_clients] (default 64) connections are open at once, and one over
    the cap is answered immediately with an [overload]-category error and
    closed — shed, never hung.  Instances are memoized in an LRU of
    [cache_capacity] entries (default 32; [0] disables caching).

    [fault] injects scheduled faults into the server's own replies — the
    op numbers count replies over the server lifetime, in the order the
    loop writes them — for chaos-testing the client retry path; firings
    are tallied as injected faults, not errors.  No client behaviour
    (killed mid-line, flooding garbage, going silent, closing before the
    reply) takes the daemon down.

    A connection's first byte decides its wire protocol: {!Proto.magic}
    opens the version handshake (answered with
    [min requested max_version]; binary v2 frames follow when both sides
    speak it), anything else starts a JSON line and the connection speaks
    v1 unchanged.  [max_version] (default {!Proto.max_version}) caps the
    negotiation; [1] forces every connection onto JSON lines.

    Observability (all off by default): [logger] receives leveled JSONL
    lifecycle events — [start], [accept] (debug), [shed], [request_error]
    (with category and detail), [metrics_dump], [trace_written],
    [shutdown] — plus [slow_query] lines for queries whose run phase
    exceeds [slow_us] microseconds (threshold needs [logger]).
    [trace_sample] > 0 with [trace_out] records every [trace_sample]-th
    request unit as a span timeline (serve phases plus the protocol's own
    message events) written in Chrome trace format to [trace_out] at
    shutdown, with the traced runs' accounted bits in [otherData].
    [metrics_file] is atomically replaced with a Prometheus text
    exposition of the stats every [metrics_interval_s] seconds (default
    5, floored at 0.1) and once more at shutdown.

    [workers = Some n] (n >= 1) turns the call into a {e fleet}: the
    parent binds the public listener at [path] plus one shard listener
    per worker ({!worker_path}), forks [n] worker processes that each
    run the event loop over the public socket and their own shard
    socket, and supervises.  Requests routed with {!shard_of_request}
    to [path.w<i>] keep each worker's instance cache hot; connections to
    the public [path] land on whichever worker accepts first.  Stats and
    health queries answered by any worker describe the whole fleet: the
    parent barrier-pulls every worker's registry snapshot, merges them
    (plus a graveyard of finished workers, so counters are monotone
    across crashes) with {!Metrics.merge}, and adds a ["workers"] object
    with per-worker gauges ([pid], [alive], [restarts], [served],
    [in_flight], [cache_hits]).  A worker that dies is reaped, its last
    snapshot folded in, and its seat respawned on the same listeners (no
    connection is refused while the seat is empty — the backlog holds
    them).  A [{"cmd": "shutdown"}] received by any worker stops the
    whole fleet; [max_requests] applies per worker, and a worker that
    exhausts its budget is not respawned.  In fleet mode [fault] goes to
    worker 0 alone (deterministic chaos indices), and [metrics_file] /
    [trace_out] are suffixed [.w<i>] per worker.  The returned served
    count is the fleet-wide total. *)
val serve :
  ?backlog:int ->
  ?max_clients:int ->
  ?max_requests:int ->
  ?line_timeout_s:float ->
  ?fault:Fault.schedule ->
  ?cache_capacity:int ->
  ?max_version:int ->
  ?registry:Tfree_dataset.Registry.t ->
  ?logger:Tfree_obs.Logger.t ->
  ?slow_us:float ->
  ?trace_sample:int ->
  ?trace_out:string ->
  ?metrics_file:string ->
  ?metrics_interval_s:float ->
  ?workers:int ->
  path:string ->
  unit ->
  int

(** Send one request to a server at [path]; wait up to [timeout_s] (default
    30) for the reply.  Transient failures — connection refused, timeouts,
    truncated or garbled replies, server errors in the
    timeout/transport/overload categories — retry up to [retries] (default
    0) more times with exponential backoff ([backoff_s]·2^attempt, default
    50 ms, plus up to 25% jitter deterministic in [backoff_seed]); each
    retry is tallied in [metrics] when given.  Structured server
    rejections (malformed request, unknown op) are fatal immediately.

    [protocol] picks the wire protocol (default [Auto]: a magic+version
    handshake, then binary v2 frames when the server speaks v2, JSON v1
    lines otherwise; [V1] skips the handshake entirely, staying
    wire-compatible with pre-v2 servers).  The retry envelope covers the
    handshake. *)
val client_query :
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?backoff_seed:int ->
  ?metrics:Metrics.t ->
  ?protocol:Proto.pref ->
  path:string ->
  request ->
  (response, string) result

(** Send one [{"op": "dataset"}] query to a server at [path].  Same retry
    envelope and protocol negotiation as {!client_query}; a server with
    no dataset registry, or an unknown dataset name, answers a structured
    rejection that is fatal immediately. *)
val client_dataset :
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?backoff_seed:int ->
  ?metrics:Metrics.t ->
  ?protocol:Proto.pref ->
  path:string ->
  dataset_request ->
  (response, string) result

(** Send many requests as one [{"op": "batch"}] exchange — one line out,
    one line back — and get per-item results in request order.  The retry
    envelope matches {!client_query} and covers the whole exchange: a
    garbled, truncated or overload-shed batch reply retries everything,
    while a structured per-item error is that item's final [Error]. *)
val client_batch :
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?backoff_seed:int ->
  ?metrics:Metrics.t ->
  ?protocol:Proto.pref ->
  path:string ->
  request list ->
  ((response, string) result list, string) result

(** Fetch the server's telemetry ([{"op": "stats"}] query); returns the
    [stats] object of the reply (see {!Metrics.to_json} for its shape). *)
val client_stats :
  ?timeout_s:float -> ?protocol:Proto.pref -> path:string -> unit -> (Jsonout.t, string) result

(** Fetch the server's cheap liveness payload ([{"op": "health"}] over v1,
    a dedicated frame tag over v2); returns the [health] object: uptime,
    queries served, errors, connection gauges and instance-cache occupancy
    — O(1) scalars, no verdict-table or histogram walk on the server. *)
val client_health :
  ?timeout_s:float -> ?protocol:Proto.pref -> path:string -> unit -> (Jsonout.t, string) result

(** Ask a server at [path] to shut down. *)
val client_shutdown : ?protocol:Proto.pref -> path:string -> unit -> unit
