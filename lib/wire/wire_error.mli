(** The wire stack's typed failure taxonomy: every [Tfree_wire] layer fails
    closed through {!Wire_error} — truncated streams, corrupt frames,
    oversized lengths, closed peers, expired deadlines and detected injected
    faults — so callers never match on exception message strings, and no
    fault can turn into a wrong verdict (only into a categorized error). *)

type kind =
  | Truncated of string  (** the stream ended before the bytes the frame promised *)
  | Corrupt of string  (** bytes arrived but do not decode (checksum, varint, layout, bit count) *)
  | Oversized of { limit : int; got : int }  (** a length field beyond the frame-size cap *)
  | Peer_closed of string  (** the other side of the transport went away *)
  | Timeout of string  (** a read deadline expired *)
  | Injected of string  (** a scheduled {!Fault} fired and was detected as such *)

exception Wire_error of kind

val message : kind -> string

(** The {!Tfree_wire.Metrics} bucket: ["timeout"] for deadlines,
    ["transport"] for everything else. *)
val category : kind -> string

val to_string : kind -> string

(** Raise {!Wire_error}. *)
val error : kind -> 'a

(** [Printf]-style raisers for the two decode-side kinds. *)
val errorf_corrupt : ('a, unit, string, 'b) format4 -> 'a

val errorf_truncated : ('a, unit, string, 'b) format4 -> 'a

(** Whether a fresh attempt can plausibly clear this kind (client retry
    policy). *)
val is_transient : kind -> bool

(** [Some kind] when the exception is a {!Wire_error}. *)
val of_exn : exn -> kind option
