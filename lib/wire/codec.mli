(** Self-delimiting binary codec for {!Tfree_comm.Msg} values, driven by the
    message {!Tfree_comm.Msg.layout}: the encoded payload occupies exactly
    [Msg.bits] bits (asserted), so wire bytes reconcile with the cost model
    by construction.  The layout descriptor serializes separately and is
    framing overhead, never payload. *)

open Tfree_comm

(** Payload bytes (right-padded to a byte boundary) and the exact payload
    bit count.  @raise Invalid_argument if the emitted bit count disagrees
    with [Msg.bits] — a codec/cost-model divergence, the bug this subsystem
    exists to catch. *)
val encode_payload : Msg.t -> Bytes.t * int

(** Decode a payload of [bits] bits under [layout], rebuilding the message
    via {!Msg.of_layout}.  Fails closed: any decode failure — a read past
    the end, a value that does not fit its layout, a bit-count mismatch —
    raises {!Wire_error.Wire_error} ([Corrupt]), never a bare
    [Invalid_argument]. *)
val decode_payload : Msg.layout -> ?off:int -> bits:int -> Bytes.t -> Msg.t

(** Byte-aligned layout descriptor (tags + LEB128 varints, zigzag for the
    possibly-negative range bounds). *)
val layout_to_bytes : Msg.layout -> Bytes.t

(** Parse a descriptor from [data] starting at [!pos], advancing [pos].
    @raise Wire_error.Wire_error ([Corrupt]) on an unknown tag. *)
val get_layout : Bytes.t -> int ref -> Msg.layout

(** Unsigned LEB128 varint, shared with the frame header. *)
val put_varint : Buffer.t -> int -> unit

(** @raise Wire_error.Wire_error — [Truncated] past the end of [data],
    [Corrupt] on a varint longer than 10 bytes or overflowing into the sign
    bit. *)
val get_varint : Bytes.t -> int ref -> int
