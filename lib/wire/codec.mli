(** Self-delimiting binary codec for {!Tfree_comm.Msg} values, driven by the
    message {!Tfree_comm.Msg.layout}: the encoded payload occupies exactly
    [Msg.bits] bits (asserted), so wire bytes reconcile with the cost model
    by construction.  The layout descriptor serializes separately and is
    framing overhead, never payload. *)

open Tfree_comm

(** Payload bytes (right-padded to a byte boundary) and the exact payload
    bit count.  @raise Invalid_argument if the emitted bit count disagrees
    with [Msg.bits] — a codec/cost-model divergence, the bug this subsystem
    exists to catch. *)
val encode_payload : Msg.t -> Bytes.t * int

(** Decode a payload of [bits] bits under [layout], rebuilding the message
    via {!Msg.of_layout}.  @raise Invalid_argument if the decoder does not
    consume exactly [bits]. *)
val decode_payload : Msg.layout -> ?off:int -> bits:int -> Bytes.t -> Msg.t

(** Byte-aligned layout descriptor (tags + LEB128 varints, zigzag for the
    possibly-negative range bounds). *)
val layout_to_bytes : Msg.layout -> Bytes.t

(** Parse a descriptor from [data] starting at [!pos], advancing [pos]. *)
val get_layout : Bytes.t -> int ref -> Msg.layout

(** Unsigned LEB128 varint, shared with the frame header. *)
val put_varint : Buffer.t -> int -> unit

val get_varint : Bytes.t -> int ref -> int
