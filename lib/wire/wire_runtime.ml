(** Coordinator-model runtime over real byte transports.

    Where {!Tfree_comm.Runtime} declares costs ("the model is the
    accounting"), this module moves the bytes: every message a protocol
    sends is encoded ({!Codec}), framed ({!Frame}), pushed through a
    per-channel {!Transport}, read back on the far side and decoded — and
    the protocol consumes the decoded copy.  Per-channel byte and frame
    counters then {e reconcile} the measured traffic against the declared
    {!Tfree_comm.Cost} ledger:

    {v wire_bytes * 8 - framing_overhead_bits = accounted_bits v}

    holds exactly, because the codec emits exactly [Msg.bits] payload bits
    per message and the tap fires at exactly the ledger's charging points
    (k frames for a k-fold private-channel broadcast, one for a blackboard
    posting).

    Two usage modes:
    + {!create}/{!tap} build a network whose tap plugs into any tester
      entry point ([Tfree.Tester.unrestricted ~tap ...]) — the whole
      protocol then runs over the wire unchanged;
    + {!make} plus the mirrored operations ({!query}, {!ask_all},
      {!ask_all_visible}, {!tell_all}, {!any_player}) expose the same
      surface as [Comm.Runtime] executing over transports, for code written
      directly against the runtime. *)

open Tfree_graph
open Tfree_comm

type kind = Pipe | Socketpair

let kind_to_string = function Pipe -> "pipe" | Socketpair -> "socketpair"

let kind_of_string = function
  | "pipe" -> Some Pipe
  | "socketpair" -> Some Socketpair
  | _ -> None

type chan_stats = {
  mutable frames : int;
  mutable wire_bytes : int;
  mutable payload_bits : int;
}

let fresh_stats () = { frames = 0; wire_bytes = 0; payload_bits = 0 }

type net = {
  transport : kind;
  k : int;
  links : Transport.t array;  (** [0..k-1] player channels, [k] the board *)
  down : chan_stats array;  (** coordinator -> player j *)
  up : chan_stats array;  (** player j -> coordinator *)
  board : chan_stats;
}

let create ?(fault = []) ?(transport = Pipe) ~k () =
  let mk () = match transport with Pipe -> Transport.pipe () | Socketpair -> Transport.socketpair () in
  (* One op counter shared across every link, so a schedule's [op] indexes
     the global frame sequence of the whole network, whichever channel each
     frame happens to cross. *)
  let counter = ref 0 in
  let wrap tr = if fault = [] then tr else Transport.faulty ~counter ~schedule:fault tr in
  {
    transport;
    k;
    links = Array.init (k + 1) (fun _ -> wrap (mk ()));
    down = Array.init k (fun _ -> fresh_stats ());
    up = Array.init k (fun _ -> fresh_stats ());
    board = fresh_stats ();
  }

let close net = Array.iter Transport.close net.links

let transport_kind net = net.transport

(* Route a channel to its link and direction counter. *)
let route net = function
  | Channel.To_player j -> (net.links.(j), net.down.(j))
  | Channel.From_player j -> (net.links.(j), net.up.(j))
  | Channel.Board -> (net.links.(net.k), net.board)

(** The byte-moving tap: encode, frame, cross the transport, decode; count;
    hand the protocol the decoded copy.  A decode that does not reproduce
    the sent message — a codec bug, or a fault the frame checksum somehow
    passed — fails closed with a typed [Corrupt], so a wire fault can abort
    a run but never hand the protocol a different message. *)
let tap net =
  let deliver ~round:_ ch msg =
    let link, stats = route net ch in
    let delivered, frame_bytes = Frame.exchange link msg in
    stats.frames <- stats.frames + 1;
    stats.wire_bytes <- stats.wire_bytes + frame_bytes;
    stats.payload_bits <- stats.payload_bits + Msg.bits msg;
    if not (Msg.value delivered = Msg.value msg && Msg.bits delivered = Msg.bits msg) then
      Wire_error.errorf_corrupt "Wire_runtime: decoded message differs from sent one on %s"
        (Channel.describe ch);
    delivered
  in
  { Channel.deliver }

(* -------------------------------------------------------- reconciliation *)

type report = {
  wire_bytes : int;  (** every byte that crossed a transport *)
  frames : int;
  payload_bits : int;  (** bits of actual message payload inside the frames *)
  framing_overhead_bits : int;  (** length prefixes, descriptors, padding *)
  accounted_bits : int;  (** what the cost model charged *)
  ratio : float;  (** wire bits / accounted bits; 1.0 = framing-free *)
}

let totals net =
  let acc = fresh_stats () in
  let add (s : chan_stats) =
    acc.frames <- acc.frames + s.frames;
    acc.wire_bytes <- acc.wire_bytes + s.wire_bytes;
    acc.payload_bits <- acc.payload_bits + s.payload_bits
  in
  Array.iter add net.down;
  Array.iter add net.up;
  add net.board;
  acc

(** Reconcile the measured wire traffic against [accounted_bits] (typically
    [Cost.total] or a simultaneous outcome's [total_bits]). *)
let report net ~accounted_bits =
  let t = totals net in
  {
    wire_bytes = t.wire_bytes;
    frames = t.frames;
    payload_bits = t.payload_bits;
    framing_overhead_bits = (8 * t.wire_bytes) - t.payload_bits;
    accounted_bits;
    ratio =
      (if accounted_bits = 0 then Float.infinity
       else float_of_int (8 * t.wire_bytes) /. float_of_int accounted_bits);
  }

(** The reconciliation identity: wire bytes minus framing equals exactly
    what the model charged. *)
let reconciles r =
  (8 * r.wire_bytes) - r.framing_overhead_bits = r.accounted_bits
  && r.payload_bits = r.accounted_bits

let report_summary r =
  Printf.sprintf "wire=%dB (%d frames), payload=%d bits, framing=%d bits, accounted=%d bits, ratio=%.3f%s"
    r.wire_bytes r.frames r.payload_bits r.framing_overhead_bits r.accounted_bits r.ratio
    (if reconciles r then "" else " [MISMATCH]")

(** Per-channel (name, stats) rows, coordinator->player and player->coordinator
    directions separately, plus the board. *)
let per_channel net =
  List.concat
    [
      List.init net.k (fun j -> (Channel.describe (Channel.To_player j), net.down.(j)));
      List.init net.k (fun j -> (Channel.describe (Channel.From_player j), net.up.(j)));
      [ (Channel.describe Channel.Board, net.board) ];
    ]

(* --------------------------------------- the Runtime-shaped wire surface *)

type t = { net : net; rt : Runtime.t }

(** A coordinator-model runtime whose every message crosses a transport.
    Same signature and semantics as [Runtime.make], plus the transport
    choice and an optional fault schedule injected below the framing. *)
let make ?(mode = Runtime.Coordinator) ?(fault = []) ?(transport = Pipe) ~seed inputs =
  let net = create ~fault ~transport ~k:(Partition.k inputs) () in
  { net; rt = Runtime.make ~mode ~tap:(tap net) ~seed inputs }

let runtime t = t.rt
let net t = t.net
let k t = Runtime.k t.rt
let n t = Runtime.n t.rt
let mode t = Runtime.mode t.rt
let cost t = Runtime.cost t.rt
let input t j = Runtime.input t.rt j
let shared_rng t ~key = Runtime.shared_rng t.rt ~key
let private_rng t j = Runtime.private_rng t.rt j

(** The five [Comm.Runtime] operations, executing over transports. *)

let query t j ~req respond = Runtime.query t.rt j ~req respond
let ask_all t ~req respond = Runtime.ask_all t.rt ~req respond
let ask_all_visible t ~req respond = Runtime.ask_all_visible t.rt ~req respond
let tell_all t msg = Runtime.tell_all t.rt msg
let any_player t predicate = Runtime.any_player t.rt predicate

(** Reconcile this runtime's wire traffic against its own cost ledger. *)
let reconcile t = report t.net ~accounted_bits:(Cost.total (Runtime.cost t.rt))

let close_runtime t = close t.net
