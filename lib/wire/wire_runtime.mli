(** Coordinator-model runtime over real byte transports, reconciling
    measured wire traffic against the declared cost ledger:
    [wire_bytes * 8 - framing_overhead_bits = accounted_bits], exactly.

    Use {!create}/{!tap} to plug a wire network into any tester entry point
    ([Tfree.Tester.unrestricted ~tap ...]), or {!make} with the mirrored
    operations for code written directly against the runtime surface. *)

open Tfree_graph
open Tfree_comm

type kind = Pipe | Socketpair

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type chan_stats = {
  mutable frames : int;
  mutable wire_bytes : int;
  mutable payload_bits : int;
}

(** A wire network: one duplex transport per player channel plus one for
    the blackboard, with per-channel, per-direction counters. *)
type net

(** [create ?fault ?transport ~k ()] builds the network.  A non-empty
    [fault] schedule wraps every link in {!Transport.faulty} with one shared
    op counter, so the schedule's op numbers index the global frame sequence
    of the whole network. *)
val create : ?fault:Fault.schedule -> ?transport:kind -> k:int -> unit -> net

val close : net -> unit
val transport_kind : net -> kind

(** The byte-moving {!Channel.tap}: encode, frame, cross the transport,
    decode, count; the protocol consumes the decoded copy.  Fails closed
    with a typed {!Wire_error.Wire_error} ([Corrupt]) if a decode does not
    reproduce the sent message — a fault can abort a run, never alter it. *)
val tap : net -> Channel.tap

type report = {
  wire_bytes : int;  (** every byte that crossed a transport *)
  frames : int;
  payload_bits : int;  (** message payload bits inside the frames *)
  framing_overhead_bits : int;  (** length prefixes, descriptors, padding *)
  accounted_bits : int;  (** what the cost model charged *)
  ratio : float;  (** wire bits / accounted bits *)
}

(** Reconcile measured traffic against [accounted_bits] ([Cost.total] or a
    simultaneous outcome's [total_bits]). *)
val report : net -> accounted_bits:int -> report

(** [wire_bytes*8 - framing_overhead_bits = accounted_bits], and the payload
    bits agree with the ledger. *)
val reconciles : report -> bool

val report_summary : report -> string

(** Per-channel (name, stats) rows: both directions of each player channel,
    then the board. *)
val per_channel : net -> (string * chan_stats) list

(** {2 The Runtime-shaped surface} *)

type t

(** Same signature and semantics as [Runtime.make], every message crossing
    a transport of the chosen kind, optionally under a fault schedule. *)
val make :
  ?mode:Runtime.mode -> ?fault:Fault.schedule -> ?transport:kind -> seed:int -> Partition.t -> t

val runtime : t -> Runtime.t
val net : t -> net
val k : t -> int
val n : t -> int
val mode : t -> Runtime.mode
val cost : t -> Cost.t
val input : t -> int -> Graph.t
val shared_rng : t -> key:int -> Tfree_util.Rng.t
val private_rng : t -> int -> Tfree_util.Rng.t

val query : t -> int -> req:Msg.t -> (Graph.t -> Msg.t) -> Msg.t
val ask_all : t -> req:Msg.t -> (int -> Graph.t -> Msg.t) -> Msg.t array
val ask_all_visible : t -> req:Msg.t -> (int -> Graph.t -> Msg.t list -> Msg.t) -> Msg.t array
val tell_all : t -> Msg.t -> unit
val any_player : t -> (Graph.t -> bool) -> bool

(** Reconcile this runtime's wire traffic against its own cost ledger. *)
val reconcile : t -> report

val close_runtime : t -> unit
