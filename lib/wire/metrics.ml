(** Service telemetry registry for tfree-serve.

    One registry per server process.  Every served query records its
    protocol, verdict, wall-clock latency and wire traffic; malformed or
    failing lines record an error.  The whole registry serializes to JSON
    for the [{"op": "stats"}] service query, with latency quantiles computed
    by {!Tfree_util.Stats} at render time — the registry itself stores raw
    samples, so quantiles are exact over the server's lifetime. *)

open Tfree_util

type protocol_counts = { mutable triangle : int; mutable triangle_free : int }

type t = {
  mutable queries_served : int;
  mutable errors : int;  (** malformed lines, unknown commands, failed runs *)
  mutable wire_bytes : int;  (** transport bytes of all served queries *)
  mutable accounted_bits : int;  (** ledger bits of all served queries *)
  verdicts : (string, protocol_counts) Hashtbl.t;
  mutable latencies_us : float list;  (** newest first, one per served query *)
}

let create () =
  {
    queries_served = 0;
    errors = 0;
    wire_bytes = 0;
    accounted_bits = 0;
    verdicts = Hashtbl.create 8;
    latencies_us = [];
  }

let counts_for t protocol =
  match Hashtbl.find_opt t.verdicts protocol with
  | Some c -> c
  | None ->
      let c = { triangle = 0; triangle_free = 0 } in
      Hashtbl.add t.verdicts protocol c;
      c

let record_query t ~protocol ~found_triangle ~wire_bytes ~accounted_bits ~latency_us =
  t.queries_served <- t.queries_served + 1;
  t.wire_bytes <- t.wire_bytes + wire_bytes;
  t.accounted_bits <- t.accounted_bits + accounted_bits;
  let c = counts_for t protocol in
  if found_triangle then c.triangle <- c.triangle + 1 else c.triangle_free <- c.triangle_free + 1;
  t.latencies_us <- latency_us :: t.latencies_us

let record_error t = t.errors <- t.errors + 1

let queries_served t = t.queries_served
let errors t = t.errors
let wire_bytes t = t.wire_bytes
let accounted_bits t = t.accounted_bits

let to_json t =
  let lat = t.latencies_us in
  let q p = if lat = [] then Jsonout.Null else Jsonout.Num (Stats.quantile p lat) in
  let verdict_objs =
    Hashtbl.fold
      (fun protocol c acc ->
        ( protocol,
          Jsonout.Obj
            [
              ("triangle", Jsonout.Num (float_of_int c.triangle));
              ("triangle_free", Jsonout.Num (float_of_int c.triangle_free));
            ] )
        :: acc)
      t.verdicts []
    |> List.sort compare
  in
  Jsonout.Obj
    [
      ("queries_served", Jsonout.Num (float_of_int t.queries_served));
      ("errors", Jsonout.Num (float_of_int t.errors));
      ("wire_bytes", Jsonout.Num (float_of_int t.wire_bytes));
      ("accounted_bits", Jsonout.Num (float_of_int t.accounted_bits));
      ("verdicts", Jsonout.Obj verdict_objs);
      ( "latency_us",
        Jsonout.Obj
          [
            ("count", Jsonout.Num (float_of_int (List.length lat)));
            ("mean", if lat = [] then Jsonout.Null else Jsonout.Num (Stats.mean lat));
            ("p50", q 0.5);
            ("p90", q 0.9);
            ("p99", q 0.99);
          ] );
    ]
