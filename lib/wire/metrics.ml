(** Service telemetry registry for tfree-serve.

    One registry per server process (the client-side retry loop can keep its
    own).  Every served query records its protocol, verdict, wall-clock
    latency and wire traffic; every failed line records an error under one
    of six {!error_category} buckets — malformed input, unknown op, a run
    that raised, an expired read deadline, a transport-level fault, an
    overloaded server shedding a connection — so an operator reading
    [{"op": "stats"}] can tell a misbehaving client from a misbehaving
    network from a saturated daemon.  Injected faults (a [--fault-spec]
    schedule firing) and client retries are tallied separately: they are
    chaos bookkeeping, not service errors.  The concurrent server also
    feeds gauges: connections accepted/shed/in flight, instance-cache
    hits and misses, batch exchanges and their item counts.

    Every mutation and every read takes the registry's mutex, so one
    registry can be shared by concurrently running clients (the load
    generator fans its per-client tallies into one) or by a server that
    serves connections from several domains.  Latency lives in bounded
    {!Tfree_obs.Histogram}s — one for end-to-end query latency, one per
    serve {!Tfree_obs.Phase} — so registry memory is O(buckets) no matter
    how many queries are served, quantiles (p50/p90/p99/p999) cost
    O(buckets) at render time within the histogram's documented precision
    (exact on empty and single-sample registries: [null] and the sample
    itself), and {!merge} folds histograms exactly, which is what lets
    per-worker registries combine into fleet-wide stats without shipping
    raw samples. *)

open Tfree_util
open Tfree_obs

type error_category =
  | Malformed  (** unparseable JSON, bad field types, unknown command, bad request values *)
  | Unknown_op  (** an [op] the service does not provide *)
  | Run_failure  (** the protocol run itself raised (not a wire fault) *)
  | Timeout  (** a per-line read deadline expired *)
  | Transport  (** truncated/corrupt/closed connections and other wire faults *)
  | Overload  (** a connection shed because the server was at [--max-clients] *)

let all_categories = [ Malformed; Unknown_op; Run_failure; Timeout; Transport; Overload ]

let category_name = function
  | Malformed -> "malformed"
  | Unknown_op -> "unknown_op"
  | Run_failure -> "run_failure"
  | Timeout -> "timeout"
  | Transport -> "transport"
  | Overload -> "overload"

(** Inverse of {!category_name}; [None] on unknown strings (they used to
    land silently in [Run_failure], which made every typo look like a
    crashed protocol run). *)
let category_of_name = function
  | "malformed" -> Some Malformed
  | "unknown_op" -> Some Unknown_op
  | "run_failure" -> Some Run_failure
  | "timeout" -> Some Timeout
  | "transport" -> Some Transport
  | "overload" -> Some Overload
  | _ -> None

type protocol_counts = { mutable triangle : int; mutable triangle_free : int }

type t = {
  mutex : Mutex.t;
  started_at : float;  (** [Unix.gettimeofday] at {!create}; basis of served/sec *)
  mutable queries_served : int;
  mutable wire_bytes : int;  (** transport bytes of all served queries *)
  mutable accounted_bits : int;  (** ledger bits of all served queries *)
  error_counts : int array;  (** indexed in [all_categories] order *)
  mutable retries : int;  (** client-side retry attempts (client registries) *)
  mutable injected : int;  (** scheduled faults that fired (chaos runs) *)
  mutable accepted : int;  (** connections the event loop accepted *)
  mutable shed : int;  (** connections refused with an overload error *)
  mutable in_flight : int;  (** gauge: connections currently open *)
  mutable cache_hits : int;  (** instance-cache lookups answered without a rebuild *)
  mutable cache_misses : int;  (** instance-cache lookups that rebuilt *)
  mutable batches : int;  (** [{"op": "batch"}] exchanges *)
  mutable batch_items : int;  (** individual requests carried by those exchanges *)
  version_served : int array;  (** queries served per wire-protocol version, indexed 1/2 *)
  version_bytes : int array;  (** serve-socket bytes per wire-protocol version, indexed 1/2 *)
  verdicts : (string, protocol_counts) Hashtbl.t;
  datasets : (string, int) Hashtbl.t;  (** [{"op": "dataset"}] queries served, per name *)
  latency : Histogram.t;  (** end-to-end latency, one sample per served query *)
  phases : Histogram.t array;  (** per-{!Tfree_obs.Phase} latency, [Phase.index]-indexed *)
}

(* versions 1..max_wire_version index [version_served]/[version_bytes];
   slot 0 is dead.  Out-of-range versions are clamped into range so a
   merge of a registry from a newer build cannot crash an older one. *)
let max_wire_version = 2
let version_slot v = if v < 1 then 1 else if v > max_wire_version then max_wire_version else v

(* All histograms in a registry share one precision so merge never faces a
   sub_bits mismatch; 2^-5 ≈ 3.1% relative bucket width. *)
let histogram_sub_bits = 5

let create ?started_at () =
  {
    mutex = Mutex.create ();
    started_at = (match started_at with Some t -> t | None -> Unix.gettimeofday ());
    queries_served = 0;
    wire_bytes = 0;
    accounted_bits = 0;
    error_counts = Array.make (List.length all_categories) 0;
    retries = 0;
    injected = 0;
    accepted = 0;
    shed = 0;
    in_flight = 0;
    cache_hits = 0;
    cache_misses = 0;
    batches = 0;
    batch_items = 0;
    version_served = Array.make (max_wire_version + 1) 0;
    version_bytes = Array.make (max_wire_version + 1) 0;
    verdicts = Hashtbl.create 8;
    datasets = Hashtbl.create 8;
    latency = Histogram.create ~sub_bits:histogram_sub_bits ();
    phases = Array.init Phase.count (fun _ -> Histogram.create ~sub_bits:histogram_sub_bits ());
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let counts_for t protocol =
  match Hashtbl.find_opt t.verdicts protocol with
  | Some c -> c
  | None ->
      let c = { triangle = 0; triangle_free = 0 } in
      Hashtbl.add t.verdicts protocol c;
      c

let record_query ?(version = 1) t ~protocol ~found_triangle ~wire_bytes ~accounted_bits
    ~latency_us =
  locked t (fun () ->
      t.queries_served <- t.queries_served + 1;
      t.wire_bytes <- t.wire_bytes + wire_bytes;
      t.accounted_bits <- t.accounted_bits + accounted_bits;
      let s = version_slot version in
      t.version_served.(s) <- t.version_served.(s) + 1;
      let c = counts_for t protocol in
      if found_triangle then c.triangle <- c.triangle + 1
      else c.triangle_free <- c.triangle_free + 1;
      (* A negative or nan latency can only come from a broken clock or a
         broken caller (the serve path times with the clamped
         [Tfree_obs.Mono] source); reject the sample rather than let it
         poison the histogram. *)
      if latency_us >= 0.0 then Histogram.record t.latency latency_us)

let index_of category =
  let rec go i = function
    | [] -> 0
    | c :: rest -> if c = category then i else go (i + 1) rest
  in
  go 0 all_categories

let record_error t ~category =
  locked t (fun () ->
      t.error_counts.(index_of category) <- t.error_counts.(index_of category) + 1)

let record_retry t = locked t (fun () -> t.retries <- t.retries + 1)
let record_injected t = locked t (fun () -> t.injected <- t.injected + 1)
let record_accept t = locked t (fun () -> t.accepted <- t.accepted + 1)
let record_shed t = locked t (fun () -> t.shed <- t.shed + 1)
let set_in_flight t n = locked t (fun () -> t.in_flight <- n)

let record_cache t ~hit =
  locked t (fun () ->
      if hit then t.cache_hits <- t.cache_hits + 1 else t.cache_misses <- t.cache_misses + 1)

let record_batch t ~items =
  locked t (fun () ->
      t.batches <- t.batches + 1;
      t.batch_items <- t.batch_items + items)

let record_dataset t ~name =
  locked t (fun () ->
      let c = match Hashtbl.find_opt t.datasets name with Some c -> c | None -> 0 in
      Hashtbl.replace t.datasets name (c + 1))

let record_version_bytes t ~version ~bytes =
  locked t (fun () ->
      let s = version_slot version in
      t.version_bytes.(s) <- t.version_bytes.(s) + bytes)

let record_phase t ~phase ~us =
  if us >= 0.0 then
    locked t (fun () -> Histogram.record t.phases.(Phase.index phase) us)

let latency_snapshot t = locked t (fun () -> Histogram.copy t.latency)
let phase_snapshot t phase = locked t (fun () -> Histogram.copy t.phases.(Phase.index phase))
let phase_count t phase = locked t (fun () -> Histogram.count t.phases.(Phase.index phase))

let queries_served t = locked t (fun () -> t.queries_served)
let errors_unlocked t = Array.fold_left ( + ) 0 t.error_counts
let errors t = locked t (fun () -> errors_unlocked t)
let errors_in t category = locked t (fun () -> t.error_counts.(index_of category))
let retries t = locked t (fun () -> t.retries)
let injected t = locked t (fun () -> t.injected)
let accepted t = locked t (fun () -> t.accepted)
let shed t = locked t (fun () -> t.shed)
let in_flight t = locked t (fun () -> t.in_flight)
let cache_hits t = locked t (fun () -> t.cache_hits)
let cache_misses t = locked t (fun () -> t.cache_misses)
let batches t = locked t (fun () -> t.batches)
let batch_items t = locked t (fun () -> t.batch_items)
let wire_bytes t = locked t (fun () -> t.wire_bytes)
let accounted_bits t = locked t (fun () -> t.accounted_bits)
let dataset_served t name =
  locked t (fun () -> match Hashtbl.find_opt t.datasets name with Some c -> c | None -> 0)

let version_served t v = locked t (fun () -> t.version_served.(version_slot v))
let version_bytes t v = locked t (fun () -> t.version_bytes.(version_slot v))

(** Fold [other]'s counters and histograms into [t] (used by the load
    generator to merge per-client registries into one for reconciliation,
    and by fleet-wide stats to combine per-worker registries).  Histogram
    merge is exact — bucket-wise count addition.  Gauges ([in_flight])
    are not merged. *)
let merge t other =
  (* Lock ordering: always [t] then [other]; callers merge into one
     accumulator from one thread, so this cannot deadlock. *)
  locked t (fun () ->
      locked other (fun () ->
          t.queries_served <- t.queries_served + other.queries_served;
          t.wire_bytes <- t.wire_bytes + other.wire_bytes;
          t.accounted_bits <- t.accounted_bits + other.accounted_bits;
          Array.iteri (fun i n -> t.error_counts.(i) <- t.error_counts.(i) + n) other.error_counts;
          t.retries <- t.retries + other.retries;
          t.injected <- t.injected + other.injected;
          t.accepted <- t.accepted + other.accepted;
          t.shed <- t.shed + other.shed;
          t.cache_hits <- t.cache_hits + other.cache_hits;
          t.cache_misses <- t.cache_misses + other.cache_misses;
          t.batches <- t.batches + other.batches;
          t.batch_items <- t.batch_items + other.batch_items;
          Array.iteri
            (fun i n -> t.version_served.(i) <- t.version_served.(i) + n)
            other.version_served;
          Array.iteri
            (fun i n -> t.version_bytes.(i) <- t.version_bytes.(i) + n)
            other.version_bytes;
          Hashtbl.iter
            (fun protocol c ->
              let mine = counts_for t protocol in
              mine.triangle <- mine.triangle + c.triangle;
              mine.triangle_free <- mine.triangle_free + c.triangle_free)
            other.verdicts;
          Hashtbl.iter
            (fun name c ->
              let mine = match Hashtbl.find_opt t.datasets name with Some c -> c | None -> 0 in
              Hashtbl.replace t.datasets name (mine + c))
            other.datasets;
          Histogram.merge t.latency other.latency;
          Array.iteri (fun i h -> Histogram.merge t.phases.(i) h) other.phases))

(* ------------------------------------------- cross-process snapshots *)

(* A registry serialized for the fleet control channel: every counter,
   both version arrays, the verdict and dataset tables, the start time,
   and each histogram in its exact {!Histogram.to_compact} encoding — so
   [of_wire] round-trips to a registry whose {!merge} into an accumulator
   is indistinguishable from merging the original.  JSON because it is
   cheap to write with {!Jsonout} and the fleet control channel is not a
   hot path (stats pulls, worker exits); the histogram compacts keep the
   bucket counts exact, and {!Jsonout} prints non-integral floats with
   %.17g so [started_at] survives.  Gauges ([in_flight]) travel too:
   merge ignores them, but the fleet parent sums them by hand for the
   fleet-wide gauge. *)

let to_wire t =
  locked t (fun () ->
      let num n = Jsonout.Num (float_of_int n) in
      let ints a = Jsonout.List (Array.to_list (Array.map num a)) in
      let verdicts =
        Hashtbl.fold
          (fun protocol c acc ->
            (protocol, Jsonout.List [ num c.triangle; num c.triangle_free ]) :: acc)
          t.verdicts []
        |> List.sort compare
      in
      let datasets =
        Hashtbl.fold (fun name c acc -> (name, num c) :: acc) t.datasets [] |> List.sort compare
      in
      Jsonout.to_string
        (Jsonout.Obj
           [
             ("started_at", Jsonout.Num t.started_at);
             ("queries_served", num t.queries_served);
             ("wire_bytes", num t.wire_bytes);
             ("accounted_bits", num t.accounted_bits);
             ("errors", ints t.error_counts);
             ("retries", num t.retries);
             ("injected", num t.injected);
             ("accepted", num t.accepted);
             ("shed", num t.shed);
             ("in_flight", num t.in_flight);
             ("cache_hits", num t.cache_hits);
             ("cache_misses", num t.cache_misses);
             ("batches", num t.batches);
             ("batch_items", num t.batch_items);
             ("version_served", ints t.version_served);
             ("version_bytes", ints t.version_bytes);
             ("verdicts", Jsonout.Obj verdicts);
             ("datasets", Jsonout.Obj datasets);
             ("latency", Jsonout.Str (Histogram.to_compact t.latency));
             ( "phases",
               Jsonout.List
                 (Array.to_list
                    (Array.map (fun h -> Jsonout.Str (Histogram.to_compact h)) t.phases)) );
           ]))

exception Bad_wire of string

let of_wire s =
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad_wire m)) fmt in
  let parse_result j =
    let int_of k =
      match Option.bind (Jsonout.member k j) Jsonout.to_float with
      | Some f -> int_of_float f
      | None -> fail "missing or non-numeric field %S" k
    in
    let float_of k =
      match Option.bind (Jsonout.member k j) Jsonout.to_float with
      | Some f -> f
      | None -> fail "missing or non-numeric field %S" k
    in
    let fill_ints k dst =
      match Jsonout.member k j with
      | Some (Jsonout.List l) ->
          (* tolerate a snapshot from a build tracking more (or fewer)
             slots: copy what fits, exactly like version_slot clamps *)
          List.iteri
            (fun i v ->
              if i < Array.length dst then
                match Jsonout.to_float v with
                | Some f -> dst.(i) <- int_of_float f
                | None -> fail "non-numeric entry in %S" k)
            l
      | _ -> fail "missing list field %S" k
    in
    let histogram_of k s =
      match Histogram.of_compact s with
      | Ok h -> h
      | Error msg -> fail "bad %S histogram: %s" k msg
    in
    let t = create ~started_at:(float_of "started_at") () in
    t.queries_served <- int_of "queries_served";
    t.wire_bytes <- int_of "wire_bytes";
    t.accounted_bits <- int_of "accounted_bits";
    fill_ints "errors" t.error_counts;
    t.retries <- int_of "retries";
    t.injected <- int_of "injected";
    t.accepted <- int_of "accepted";
    t.shed <- int_of "shed";
    t.in_flight <- int_of "in_flight";
    t.cache_hits <- int_of "cache_hits";
    t.cache_misses <- int_of "cache_misses";
    t.batches <- int_of "batches";
    t.batch_items <- int_of "batch_items";
    fill_ints "version_served" t.version_served;
    fill_ints "version_bytes" t.version_bytes;
    (match Jsonout.member "verdicts" j with
    | Some (Jsonout.Obj fields) ->
        List.iter
          (fun (protocol, v) ->
            match v with
            | Jsonout.List [ tri; free ] -> (
                match (Jsonout.to_float tri, Jsonout.to_float free) with
                | Some a, Some b ->
                    Hashtbl.replace t.verdicts protocol
                      { triangle = int_of_float a; triangle_free = int_of_float b }
                | _ -> fail "non-numeric verdict counts for %S" protocol)
            | _ -> fail "bad verdict entry for %S" protocol)
          fields
    | _ -> fail "missing object field \"verdicts\"");
    (match Jsonout.member "datasets" j with
    | Some (Jsonout.Obj fields) ->
        List.iter
          (fun (name, v) ->
            match Jsonout.to_float v with
            | Some f -> Hashtbl.replace t.datasets name (int_of_float f)
            | None -> fail "non-numeric dataset count for %S" name)
          fields
    | _ -> fail "missing object field \"datasets\"");
    (match Jsonout.member "latency" j with
    | Some (Jsonout.Str s) -> Histogram.merge t.latency (histogram_of "latency" s)
    | _ -> fail "missing string field \"latency\"");
    (match Jsonout.member "phases" j with
    | Some (Jsonout.List l) ->
        List.iteri
          (fun i v ->
            match v with
            | Jsonout.Str s when i < Array.length t.phases ->
                Histogram.merge t.phases.(i) (histogram_of "phases" s)
            | Jsonout.Str _ -> ()
            | _ -> fail "non-string entry in \"phases\"")
          l
    | _ -> fail "missing list field \"phases\"");
    t
  in
  match Jsonout.parse s with
  | Error msg -> Error ("Metrics.of_wire: bad JSON: " ^ msg)
  | Ok j -> (
      try Ok (parse_result j) with Bad_wire msg -> Error ("Metrics.of_wire: " ^ msg))

(* Render one histogram as the stats-JSON latency object.  The legacy
   per-sample keys (count/mean/p50/p90/p99) keep their meaning; p999,
   sum, min and max are additive. *)
let histogram_json h =
  let num_or_null v = if Histogram.count h = 0 then Jsonout.Null else Jsonout.Num v in
  Jsonout.Obj
    [
      ("count", Jsonout.Num (float_of_int (Histogram.count h)));
      ("mean", num_or_null (Histogram.mean h));
      ("sum", Jsonout.Num (Histogram.sum h));
      ("min", num_or_null (Histogram.min_value h));
      ("max", num_or_null (Histogram.max_value h));
      ("p50", num_or_null (Histogram.quantile h 0.5));
      ("p90", num_or_null (Histogram.quantile h 0.9));
      ("p99", num_or_null (Histogram.quantile h 0.99));
      ("p999", num_or_null (Histogram.quantile h 0.999));
    ]

let to_json t =
  locked t (fun () ->
      let verdict_objs =
        Hashtbl.fold
          (fun protocol c acc ->
            ( protocol,
              Jsonout.Obj
                [
                  ("triangle", Jsonout.Num (float_of_int c.triangle));
                  ("triangle_free", Jsonout.Num (float_of_int c.triangle_free));
                ] )
            :: acc)
          t.verdicts []
        |> List.sort compare
      in
      let category_objs =
        List.map
          (fun c ->
            (category_name c, Jsonout.Num (float_of_int t.error_counts.(index_of c))))
          all_categories
      in
      let uptime = Float.max 1e-9 (Unix.gettimeofday () -. t.started_at) in
      let num n = Jsonout.Num (float_of_int n) in
      Jsonout.Obj
        [
          ("queries_served", num t.queries_served);
          ("errors", num (errors_unlocked t));
          ("errors_by_category", Jsonout.Obj category_objs);
          ("retries", num t.retries);
          ("injected_faults", num t.injected);
          ("wire_bytes", num t.wire_bytes);
          ("accounted_bits", num t.accounted_bits);
          ("uptime_s", Jsonout.Num uptime);
          ("served_per_sec", Jsonout.Num (float_of_int t.queries_served /. uptime));
          ("in_flight", num t.in_flight);
          ( "connections",
            Jsonout.Obj
              [ ("accepted", num t.accepted); ("shed", num t.shed); ("in_flight", num t.in_flight) ]
          );
          ( "cache",
            Jsonout.Obj
              [
                ("hits", num t.cache_hits);
                ("misses", num t.cache_misses);
                ("lookups", num (t.cache_hits + t.cache_misses));
              ] );
          ("batch", Jsonout.Obj [ ("batches", num t.batches); ("items", num t.batch_items) ]);
          ( "protocol_versions",
            Jsonout.Obj
              (List.init max_wire_version (fun i ->
                   let v = i + 1 in
                   ( Printf.sprintf "v%d" v,
                     Jsonout.Obj
                       [
                         ("served", num t.version_served.(v)); ("bytes", num t.version_bytes.(v));
                       ] ))) );
          ("verdicts", Jsonout.Obj verdict_objs);
          ( "datasets",
            Jsonout.Obj
              (Hashtbl.fold
                 (fun name c acc -> (name, Jsonout.Num (float_of_int c)) :: acc)
                 t.datasets []
              |> List.sort compare) );
          ("latency_us", histogram_json t.latency);
          ( "phases",
            Jsonout.Obj
              (List.map
                 (fun p -> (Phase.name p, histogram_json t.phases.(Phase.index p)))
                 Phase.all) );
        ])

(** Cheap liveness snapshot for [{"op": "health"}]: scalar counters only —
    no hashtable iteration, no histogram walk, no quantile computation —
    so a health probe costs O(1) under the mutex no matter how much the
    registry has accumulated.  (Cache occupancy is the service's to add:
    the LRU lives outside the registry.) *)
let health_json t =
  locked t (fun () ->
      let num n = Jsonout.Num (float_of_int n) in
      let uptime = Float.max 1e-9 (Unix.gettimeofday () -. t.started_at) in
      Jsonout.Obj
        [
          ("uptime_s", Jsonout.Num uptime);
          ("queries_served", num t.queries_served);
          ("errors", num (errors_unlocked t));
          ("in_flight", num t.in_flight);
          ("accepted", num t.accepted);
          ("shed", num t.shed);
        ])
