(** Service telemetry registry for tfree-serve.

    One registry per server process (the client-side retry loop can keep its
    own).  Every served query records its protocol, verdict, wall-clock
    latency and wire traffic; every failed line records an error under one
    of five {!error_category} buckets — malformed input, unknown op, a run
    that raised, an expired read deadline, a transport-level fault — so an
    operator reading [{"op": "stats"}] can tell a misbehaving client from a
    misbehaving network.  Injected faults (a [--fault-spec] schedule firing)
    and client retries are tallied separately: they are chaos bookkeeping,
    not service errors.  The whole registry serializes to JSON with latency
    quantiles computed by {!Tfree_util.Stats} at render time — the registry
    stores raw samples, so quantiles are exact over the server's lifetime
    (and well-defined on empty and single-sample registries: [null] and the
    sample itself, respectively). *)

open Tfree_util

type error_category =
  | Malformed  (** unparseable JSON, bad field types, unknown command, bad request values *)
  | Unknown_op  (** an [op] the service does not provide *)
  | Run_failure  (** the protocol run itself raised (not a wire fault) *)
  | Timeout  (** a per-line read deadline expired *)
  | Transport  (** truncated/corrupt/closed connections and other wire faults *)

let all_categories = [ Malformed; Unknown_op; Run_failure; Timeout; Transport ]

let category_name = function
  | Malformed -> "malformed"
  | Unknown_op -> "unknown_op"
  | Run_failure -> "run_failure"
  | Timeout -> "timeout"
  | Transport -> "transport"

(** Inverse of {!category_name}; unknown strings land in [Run_failure]. *)
let category_of_name = function
  | "malformed" -> Malformed
  | "unknown_op" -> Unknown_op
  | "timeout" -> Timeout
  | "transport" -> Transport
  | _ -> Run_failure

type protocol_counts = { mutable triangle : int; mutable triangle_free : int }

type t = {
  mutable queries_served : int;
  mutable wire_bytes : int;  (** transport bytes of all served queries *)
  mutable accounted_bits : int;  (** ledger bits of all served queries *)
  error_counts : int array;  (** indexed in [all_categories] order *)
  mutable retries : int;  (** client-side retry attempts (client registries) *)
  mutable injected : int;  (** scheduled faults that fired (chaos runs) *)
  verdicts : (string, protocol_counts) Hashtbl.t;
  mutable latencies_us : float list;  (** newest first, one per served query *)
}

let create () =
  {
    queries_served = 0;
    wire_bytes = 0;
    accounted_bits = 0;
    error_counts = Array.make (List.length all_categories) 0;
    retries = 0;
    injected = 0;
    verdicts = Hashtbl.create 8;
    latencies_us = [];
  }

let counts_for t protocol =
  match Hashtbl.find_opt t.verdicts protocol with
  | Some c -> c
  | None ->
      let c = { triangle = 0; triangle_free = 0 } in
      Hashtbl.add t.verdicts protocol c;
      c

let record_query t ~protocol ~found_triangle ~wire_bytes ~accounted_bits ~latency_us =
  t.queries_served <- t.queries_served + 1;
  t.wire_bytes <- t.wire_bytes + wire_bytes;
  t.accounted_bits <- t.accounted_bits + accounted_bits;
  let c = counts_for t protocol in
  if found_triangle then c.triangle <- c.triangle + 1 else c.triangle_free <- c.triangle_free + 1;
  t.latencies_us <- latency_us :: t.latencies_us

let index_of category =
  let rec go i = function
    | [] -> 0
    | c :: rest -> if c = category then i else go (i + 1) rest
  in
  go 0 all_categories

let record_error t ~category = t.error_counts.(index_of category) <- t.error_counts.(index_of category) + 1
let record_retry t = t.retries <- t.retries + 1
let record_injected t = t.injected <- t.injected + 1

let queries_served t = t.queries_served
let errors t = Array.fold_left ( + ) 0 t.error_counts
let errors_in t category = t.error_counts.(index_of category)
let retries t = t.retries
let injected t = t.injected
let wire_bytes t = t.wire_bytes
let accounted_bits t = t.accounted_bits

let to_json t =
  let lat = t.latencies_us in
  let q p = if lat = [] then Jsonout.Null else Jsonout.Num (Stats.quantile p lat) in
  let verdict_objs =
    Hashtbl.fold
      (fun protocol c acc ->
        ( protocol,
          Jsonout.Obj
            [
              ("triangle", Jsonout.Num (float_of_int c.triangle));
              ("triangle_free", Jsonout.Num (float_of_int c.triangle_free));
            ] )
        :: acc)
      t.verdicts []
    |> List.sort compare
  in
  let category_objs =
    List.map
      (fun c -> (category_name c, Jsonout.Num (float_of_int (errors_in t c))))
      all_categories
  in
  Jsonout.Obj
    [
      ("queries_served", Jsonout.Num (float_of_int t.queries_served));
      ("errors", Jsonout.Num (float_of_int (errors t)));
      ("errors_by_category", Jsonout.Obj category_objs);
      ("retries", Jsonout.Num (float_of_int t.retries));
      ("injected_faults", Jsonout.Num (float_of_int t.injected));
      ("wire_bytes", Jsonout.Num (float_of_int t.wire_bytes));
      ("accounted_bits", Jsonout.Num (float_of_int t.accounted_bits));
      ("verdicts", Jsonout.Obj verdict_objs);
      ( "latency_us",
        Jsonout.Obj
          [
            ("count", Jsonout.Num (float_of_int (List.length lat)));
            ("mean", if lat = [] then Jsonout.Null else Jsonout.Num (Stats.mean lat));
            ("p50", q 0.5);
            ("p90", q 0.9);
            ("p99", q 0.99);
          ] );
    ]
