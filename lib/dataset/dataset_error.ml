type kind =
  | Bad_header of string
  | Bad_line of { line : int; msg : string }
  | Out_of_range of { line : int; value : int; n : int }
  | Truncated of string
  | Corrupt of string
  | Bad_manifest of string
  | Unknown_dataset of string
  | Io of string

exception Dataset_error of kind

let message = function
  | Bad_header msg -> Printf.sprintf "bad header: %s" msg
  | Bad_line { line; msg } -> Printf.sprintf "line %d: %s" line msg
  | Out_of_range { line; value; n } ->
      Printf.sprintf "line %d: vertex %d out of range (n=%d)" line value n
  | Truncated msg -> Printf.sprintf "truncated: %s" msg
  | Corrupt msg -> Printf.sprintf "corrupt: %s" msg
  | Bad_manifest msg -> Printf.sprintf "bad manifest: %s" msg
  | Unknown_dataset name -> Printf.sprintf "unknown dataset %S" name
  | Io msg -> Printf.sprintf "io: %s" msg

let () =
  Printexc.register_printer (function
    | Dataset_error kind -> Some ("Dataset_error: " ^ message kind)
    | _ -> None)

let bad_header fmt = Printf.ksprintf (fun msg -> raise (Dataset_error (Bad_header msg))) fmt

let bad_line ~line fmt =
  Printf.ksprintf (fun msg -> raise (Dataset_error (Bad_line { line; msg }))) fmt

let out_of_range ~line ~value ~n = raise (Dataset_error (Out_of_range { line; value; n }))

let truncated fmt = Printf.ksprintf (fun msg -> raise (Dataset_error (Truncated msg))) fmt

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Dataset_error (Corrupt msg))) fmt

let bad_manifest fmt = Printf.ksprintf (fun msg -> raise (Dataset_error (Bad_manifest msg))) fmt

let unknown_dataset name = raise (Dataset_error (Unknown_dataset name))

let io fmt = Printf.ksprintf (fun msg -> raise (Dataset_error (Io msg))) fmt
