open Tfree_graph
module E = Dataset_error

let tokens line =
  String.map (fun c -> if c = '\t' || c = '\r' then ' ' else c) line
  |> String.split_on_char ' '
  |> List.filter (fun s -> s <> "")

let int_token ~line s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> E.bad_line ~line "vertex %S is not an integer" s

(* The vertex count is only known after the last line (absent [?n]), so
   endpoints buffer in a growable flat int array; the graph build then
   streams pairs back out of it. *)
let parse_lines ?n lines =
  let buf = ref (Array.make 4096 0) in
  let len = ref 0 in
  let push x =
    if !len = Array.length !buf then begin
      let grown = Array.make (2 * Array.length !buf) 0 in
      Array.blit !buf 0 grown 0 !len;
      buf := grown
    end;
    !buf.(!len) <- x;
    incr len
  in
  let maxv = ref (-1) in
  let lineno = ref 0 in
  Seq.iter
    (fun l ->
      incr lineno;
      match tokens l with
      | [] -> ()
      | t :: _ when t.[0] = '#' -> ()
      | [ su; sv ] ->
          let u = int_token ~line:!lineno su in
          let v = int_token ~line:!lineno sv in
          if u < 0 then E.bad_line ~line:!lineno "negative vertex %d" u;
          if v < 0 then E.bad_line ~line:!lineno "negative vertex %d" v;
          (match n with
          | Some n ->
              if u >= n then E.out_of_range ~line:!lineno ~value:u ~n;
              if v >= n then E.out_of_range ~line:!lineno ~value:v ~n
          | None -> ());
          if u > !maxv then maxv := u;
          if v > !maxv then maxv := v;
          push u;
          push v
      | _ -> E.bad_line ~line:!lineno "expected 'u v'")
    lines;
  let n = match n with Some n -> n | None -> !maxv + 1 in
  let flat = !buf and total = !len in
  let rec step i () =
    if i >= total then Seq.Nil else Seq.Cons ((flat.(i), flat.(i + 1)), step (i + 2))
  in
  Graph.of_edge_seq ~n (step 0)

let parse_string ?n s = parse_lines ?n (List.to_seq (String.split_on_char '\n' s))

let load ?n path =
  let ic = try open_in_bin path with Sys_error msg -> E.io "%s" msg in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec lines () =
        match In_channel.input_line ic with Some l -> Seq.Cons (l, lines) | None -> Seq.Nil
      in
      try parse_lines ?n lines with Sys_error msg -> E.io "%s" msg)

let to_string g =
  let b = Buffer.create (64 + (8 * Graph.m g)) in
  Buffer.add_string b (Printf.sprintf "# tfree dataset: n=%d m=%d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges g (fun u v -> Buffer.add_string b (Printf.sprintf "%d %d\n" u v));
  Buffer.contents b

let save g path =
  try Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (to_string g))
  with Sys_error msg -> E.io "%s" msg
