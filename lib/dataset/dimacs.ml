open Tfree_graph
module E = Dataset_error

(* Whitespace tokenizer tolerant of tabs and CR line endings. *)
let tokens line =
  String.map (fun c -> if c = '\t' || c = '\r' then ' ' else c) line
  |> String.split_on_char ' '
  |> List.filter (fun s -> s <> "")

let int_token ~line what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> E.bad_line ~line "%s %S is not an integer" what s

let is_comment l = l <> "" && l.[0] = 'c'

(* One pass: scan to the header for [n]/[m], then hand the rest of the line
   dispenser to {!Graph.of_edge_seq} as an edge sequence that validates and
   counts as it is forced. *)
let parse_lines lines =
  let next = Seq.to_dispenser lines in
  let lineno = ref 0 in
  let read () =
    match next () with
    | Some l ->
        incr lineno;
        Some l
    | None -> None
  in
  let rec header () =
    match read () with
    | None -> E.bad_header "no 'p edge' line before end of input"
    | Some l when is_comment l -> header ()
    | Some l -> (
        match tokens l with
        | [] -> header ()
        | [ "p"; "edge"; sn; sm ] ->
            let n = int_token ~line:!lineno "vertex count" sn in
            let m = int_token ~line:!lineno "edge count" sm in
            if n < 0 then E.bad_header "negative vertex count %d" n;
            if m < 0 then E.bad_header "negative edge count %d" m;
            (n, m)
        | "p" :: "edge" :: _ -> E.bad_line ~line:!lineno "header is not 'p edge N M'"
        | "p" :: kind :: _ -> E.bad_header "unsupported problem kind %S (want \"edge\")" kind
        | [ "p" ] -> E.bad_line ~line:!lineno "header is not 'p edge N M'"
        | "e" :: _ -> E.bad_header "edge line before the 'p edge' header"
        | kind :: _ -> E.bad_line ~line:!lineno "unknown line kind %S" kind)
  in
  let n, m_declared = header () in
  let seen = ref 0 in
  let rec edge_step () =
    match read () with
    | None ->
        if !seen <> m_declared then
          E.bad_header "declared m=%d but found %d edge lines" m_declared !seen;
        Seq.Nil
    | Some l when is_comment l -> edge_step ()
    | Some l -> (
        match tokens l with
        | [] -> edge_step ()
        | [ "e"; su; sv ] ->
            let u = int_token ~line:!lineno "vertex" su in
            let v = int_token ~line:!lineno "vertex" sv in
            if u < 1 || u > n then E.out_of_range ~line:!lineno ~value:u ~n;
            if v < 1 || v > n then E.out_of_range ~line:!lineno ~value:v ~n;
            incr seen;
            if !seen > m_declared then
              E.bad_header "more edge lines than the declared m=%d" m_declared;
            Seq.Cons ((u - 1, v - 1), edge_step)
        | "e" :: _ -> E.bad_line ~line:!lineno "edge line is not 'e u v'"
        | "p" :: _ -> E.bad_line ~line:!lineno "duplicate 'p' header"
        | kind :: _ -> E.bad_line ~line:!lineno "unknown line kind %S" kind)
  in
  Graph.of_edge_seq ~n edge_step

let parse_string s = parse_lines (List.to_seq (String.split_on_char '\n' s))

let load path =
  let ic = try open_in_bin path with Sys_error msg -> E.io "%s" msg in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec lines () =
        match In_channel.input_line ic with Some l -> Seq.Cons (l, lines) | None -> Seq.Nil
      in
      try parse_lines lines with Sys_error msg -> E.io "%s" msg)

let to_string g =
  let b = Buffer.create (64 + (12 * Graph.m g)) in
  Buffer.add_string b "c tfree dataset\n";
  Buffer.add_string b (Printf.sprintf "p edge %d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges g (fun u v -> Buffer.add_string b (Printf.sprintf "e %d %d\n" (u + 1) (v + 1)));
  Buffer.contents b

let save g path =
  try Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (to_string g))
  with Sys_error msg -> E.io "%s" msg
