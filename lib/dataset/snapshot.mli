(** The compact binary snapshot format: a parsed corpus serialized once so
    the daemon loads it in milliseconds instead of re-parsing text or
    regenerating instances per query.

    Layout (all integers unsigned LEB128 varints, as in the wire [Proto]):

    {v
    "TFS1"                         4-byte magic
    version                        1 byte, currently 1
    n  m                           varints
    per edge, lexicographic:       du = u - prev_u        (first prev_u = -1)
                                   then  v - u - 1        if du > 0 (row changed)
                                   or    v - prev_v - 1   if du = 0 (same row)
    checksum                       2 bytes LE: sum16 of everything after the
                                   magic, before these bytes
    v}

    Because the edge list is sorted and deduplicated, every delta is
    non-negative and small, so a million-edge graph costs a handful of
    bits per edge.  {!decode} fails closed with a typed
    {!Dataset_error.Dataset_error}: bad magic, unsupported version, any
    truncation, a checksum mismatch (catches every single bit flip),
    out-of-range endpoints, trailing bytes, or a decoded edge count that
    disagrees with the header. *)

open Tfree_graph

val magic : string

val encode : Graph.t -> string

(** @raise Dataset_error.Dataset_error on any malformed image. *)
val decode : string -> Graph.t

val save : Graph.t -> string -> unit

(** @raise Dataset_error.Dataset_error on unreadable or malformed input. *)
val load : string -> Graph.t
