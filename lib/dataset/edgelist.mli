(** Whitespace edge-list reader/writer: one [u v] pair per line, 0-based,
    with [#] comments and blank lines ignored — the lingua franca of SNAP
    and most published graph corpora.

    Fail-closed like {!Dimacs}: a line that is not exactly two integers,
    a negative endpoint, or (under an explicit [?n]) an endpoint at or
    beyond [n] raises {!Dataset_error.Dataset_error}.  Endpoints are
    buffered in a growable flat int array (no list cells) because the
    vertex count is only known once the whole file has streamed past —
    unless [?n] pins it up front.  Without [?n] the vertex count is
    inferred as [1 + max endpoint] (trailing isolated vertices are not
    representable; pass [?n] to keep them). *)

open Tfree_graph

val parse_lines : ?n:int -> string Seq.t -> Graph.t
val parse_string : ?n:int -> string -> Graph.t

(** @raise Dataset_error.Dataset_error on unreadable or malformed input. *)
val load : ?n:int -> string -> Graph.t

(** One [u v] line per edge (0-based, lexicographic) under a [#] banner.
    [parse_string ~n:(Graph.n g)] inverts it exactly. *)
val to_string : Graph.t -> string

val save : Graph.t -> string -> unit
