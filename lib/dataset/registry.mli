(** The named-dataset registry: [name -> path/format/metadata], backed by a
    JSON manifest ([tfree-datasets/v1]) that [tfree serve --datasets] loads
    at startup and the [tfree dataset] CLI verbs maintain.

    Loaded graphs are memoized per registry, so every connection of a
    daemon shares one in-memory copy of each corpus; {!graph} also
    cross-checks the loaded vertex/edge counts against the manifest and
    fails closed on disagreement.  Generated datasets ([tfree dataset
    gen]) carry their generation parameters in the manifest so a
    dataset-backed query can be proven byte-identical to the equivalent
    generated-instance query. *)

open Tfree_graph

type format = Dimacs | Edges | Snapshot

val format_to_string : format -> string
val format_of_string : string -> format option

(** Decide a file's format from its content: the snapshot magic, else a
    DIMACS [p]-line among the leading lines, else an edge list.
    @raise Dataset_error.Dataset_error when the file cannot be read. *)
val sniff : string -> format

(** Parse a graph file. [format] defaults to {!sniff}'s verdict. *)
val load_graph : ?format:format -> string -> Graph.t

(** How a generated dataset was built (the [tfree dataset gen] parameters,
    in the service's instance-builder vocabulary). *)
type gen_meta = { gen_family : string; gen_n : int; gen_d : float; gen_eps : float; gen_seed : int }

type entry = {
  name : string;
  path : string;  (** relative paths resolve against the manifest's directory *)
  format : format;
  n : int;
  m : int;
  gen : gen_meta option;
}

type t

(** An empty registry; [dir] (default ".") anchors relative entry paths. *)
val create : ?dir:string -> unit -> t

(** Parse and validate a manifest file; entry paths resolve against the
    manifest's own directory.
    @raise Dataset_error.Dataset_error on an unreadable or invalid manifest. *)
val load : string -> t

val save : t -> string -> unit
val to_json : t -> Tfree_util.Jsonout.t

(** Add or replace (by name) an entry. *)
val add : t -> entry -> unit

(** Manifest order, replaced entries in place. *)
val entries : t -> entry list

val find : t -> string -> entry option
val resolve_path : t -> entry -> string

(** The loaded graph for a registered name, memoized; the first load
    cross-checks n/m against the manifest entry.
    @raise Dataset_error.Dataset_error on an unknown name, an unreadable or
    malformed file, or a metadata mismatch. *)
val graph : t -> string -> Graph.t

(** Eagerly load every registered dataset (daemon startup). *)
val preload : t -> unit
