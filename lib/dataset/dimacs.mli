(** Streaming DIMACS reader/writer (the [p edge] / [e u v] dialect the
    aegypti-style triangle tools consume).

    The parser is strict and fail-closed: a [p edge N M] header must
    precede every edge line, vertices are 1-based and must lie in
    [1..N], the number of [e]-lines must equal the declared [M], and any
    line that is not a comment ([c]), a header or an edge is an error —
    every violation raises {!Dataset_error.Dataset_error}.  Edges stream
    straight into {!Graph.of_edge_seq}; no intermediate edge list is
    materialized, so million-edge files parse in one pass.  Self-loops
    and duplicate edges are legal input and collapse exactly as
    {!Graph.of_edges} collapses them. *)

open Tfree_graph

(** Parse from a sequence of lines (newlines already stripped); the
    sequence is forced exactly once. *)
val parse_lines : string Seq.t -> Graph.t

val parse_string : string -> Graph.t

(** Parse a file, reading line by line.
    @raise Dataset_error.Dataset_error on unreadable or malformed input. *)
val load : string -> Graph.t

(** Render in canonical form: a [c] banner, the [p edge n m] header, then
    one [e u v] line per edge (1-based, lexicographic).  [parse_string]
    inverts it exactly. *)
val to_string : Graph.t -> string

val save : Graph.t -> string -> unit
