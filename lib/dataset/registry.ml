open Tfree_util
open Tfree_graph
module E = Dataset_error

let schema = "tfree-datasets/v1"

(* ----------------------------------------------------------------- format *)

type format = Dimacs | Edges | Snapshot

let format_to_string = function Dimacs -> "dimacs" | Edges -> "edges" | Snapshot -> "snapshot"

let format_of_string = function
  | "dimacs" -> Some Dimacs
  | "edges" -> Some Edges
  | "snapshot" -> Some Snapshot
  | _ -> None

(* Content sniffing: the snapshot magic is binary and unambiguous; otherwise
   scan the leading lines for a DIMACS problem line. *)
let sniff path =
  let head =
    let ic = try open_in_bin path with Sys_error msg -> E.io "%s" msg in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let want = 4096 in
        let buf = Bytes.create want in
        let got = try In_channel.input ic buf 0 want with Sys_error msg -> E.io "%s" msg in
        Bytes.sub_string buf 0 got)
  in
  let mlen = String.length Snapshot.magic in
  if String.length head >= mlen && String.sub head 0 mlen = Snapshot.magic then Snapshot
  else
    let lines = String.split_on_char '\n' head in
    let rec scan = function
      | [] -> Edges
      | l :: rest ->
          if l = "" || l = "\r" || l.[0] = 'c' || l.[0] = '#' then scan rest
          else if String.length l >= 2 && l.[0] = 'p' && (l.[1] = ' ' || l.[1] = '\t') then Dimacs
          else Edges
    in
    scan lines

let load_graph ?format path =
  let format = match format with Some f -> f | None -> sniff path in
  match format with
  | Dimacs -> Dimacs.load path
  | Edges -> Edgelist.load path
  | Snapshot -> Snapshot.load path

(* ---------------------------------------------------------------- entries *)

type gen_meta = { gen_family : string; gen_n : int; gen_d : float; gen_eps : float; gen_seed : int }

type entry = {
  name : string;
  path : string;
  format : format;
  n : int;
  m : int;
  gen : gen_meta option;
}

type t = {
  dir : string;
  mutable items : entry list;  (** manifest order *)
  graphs : (string, Graph.t) Hashtbl.t;
}

let create ?(dir = ".") () = { dir; items = []; graphs = Hashtbl.create 8 }

let entries t = t.items

let find t name = List.find_opt (fun e -> e.name = name) t.items

let add t e =
  (match Hashtbl.find_opt t.graphs e.name with
  | Some _ -> Hashtbl.remove t.graphs e.name
  | None -> ());
  if List.exists (fun x -> x.name = e.name) t.items then
    t.items <- List.map (fun x -> if x.name = e.name then e else x) t.items
  else t.items <- t.items @ [ e ]

let resolve_path t e = if Filename.is_relative e.path then Filename.concat t.dir e.path else e.path

(* --------------------------------------------------------------- manifest *)

let gen_to_json g =
  Jsonout.Obj
    [
      ("family", Jsonout.Str g.gen_family);
      ("n", Jsonout.Num (float_of_int g.gen_n));
      ("d", Jsonout.Num g.gen_d);
      ("eps", Jsonout.Num g.gen_eps);
      ("seed", Jsonout.Num (float_of_int g.gen_seed));
    ]

let entry_to_json e =
  Jsonout.Obj
    (("name", Jsonout.Str e.name)
     :: ("path", Jsonout.Str e.path)
     :: ("format", Jsonout.Str (format_to_string e.format))
     :: ("n", Jsonout.Num (float_of_int e.n))
     :: ("m", Jsonout.Num (float_of_int e.m))
     :: (match e.gen with None -> [] | Some g -> [ ("gen", gen_to_json g) ]))

let to_json t =
  Jsonout.Obj
    [ ("schema", Jsonout.Str schema); ("datasets", Jsonout.List (List.map entry_to_json t.items)) ]

let str_field j name =
  match Jsonout.member name j with
  | Some (Jsonout.Str s) -> s
  | Some _ -> E.bad_manifest "field %S is not a string" name
  | None -> E.bad_manifest "missing field %S" name

let int_field j name =
  match Option.bind (Jsonout.member name j) Jsonout.to_float with
  | Some x when Float.is_integer x -> int_of_float x
  | Some _ -> E.bad_manifest "field %S is not an integer" name
  | None -> E.bad_manifest "missing numeric field %S" name

let num_field j name =
  match Option.bind (Jsonout.member name j) Jsonout.to_float with
  | Some x -> x
  | None -> E.bad_manifest "missing numeric field %S" name

let entry_of_json j =
  let name = str_field j "name" in
  if name = "" then E.bad_manifest "empty dataset name";
  let format_s = str_field j "format" in
  let format =
    match format_of_string format_s with
    | Some f -> f
    | None -> E.bad_manifest "dataset %S: unknown format %S" name format_s
  in
  let n = int_field j "n" and m = int_field j "m" in
  if n < 0 || m < 0 then E.bad_manifest "dataset %S: negative n or m" name;
  let gen =
    match Jsonout.member "gen" j with
    | None -> None
    | Some gj ->
        Some
          {
            gen_family = str_field gj "family";
            gen_n = int_field gj "n";
            gen_d = num_field gj "d";
            gen_eps = num_field gj "eps";
            gen_seed = int_field gj "seed";
          }
  in
  { name; path = str_field j "path"; format; n; m; gen }

let load path =
  let content =
    try In_channel.with_open_bin path In_channel.input_all with Sys_error msg -> E.io "%s" msg
  in
  let doc =
    match Jsonout.parse content with
    | Ok v -> v
    | Error msg -> E.bad_manifest "%s: %s" path msg
  in
  (match Jsonout.member "schema" doc with
  | Some (Jsonout.Str s) when s = schema -> ()
  | Some (Jsonout.Str s) -> E.bad_manifest "unexpected schema %S (want %S)" s schema
  | _ -> E.bad_manifest "missing schema field");
  let items =
    match Option.bind (Jsonout.member "datasets" doc) Jsonout.to_list with
    | Some l -> List.map entry_of_json l
    | None -> E.bad_manifest "missing datasets list"
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if Hashtbl.mem seen e.name then E.bad_manifest "duplicate dataset name %S" e.name;
      Hashtbl.add seen e.name ())
    items;
  { dir = Filename.dirname path; items; graphs = Hashtbl.create 8 }

let save t path =
  try
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (Jsonout.to_string ~indent:2 (to_json t)))
  with Sys_error msg -> E.io "%s" msg

(* ----------------------------------------------------------------- graphs *)

let graph t name =
  match Hashtbl.find_opt t.graphs name with
  | Some g -> g
  | None -> (
      match find t name with
      | None -> E.unknown_dataset name
      | Some e ->
          let g = load_graph ~format:e.format (resolve_path t e) in
          if Graph.n g <> e.n || Graph.m g <> e.m then
            E.bad_manifest "dataset %S: file has n=%d m=%d, manifest says n=%d m=%d" name
              (Graph.n g) (Graph.m g) e.n e.m;
          Hashtbl.add t.graphs name g;
          g)

let preload t = List.iter (fun e -> ignore (graph t e.name)) t.items
