open Tfree_graph
module E = Dataset_error

let magic = "TFS1"
let version = 1

(* ------------------------------------------------------------ primitives *)

let put_varint b x =
  let x = ref x in
  let continue = ref true in
  while !continue do
    let byte = !x land 0x7f in
    x := !x lsr 7;
    if !x = 0 then begin
      Buffer.add_char b (Char.chr byte);
      continue := false
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

let get_varint s pos limit =
  let x = ref 0 and shift = ref 0 and fin = ref false in
  while not !fin do
    if !pos >= limit then E.truncated "snapshot ends inside a varint";
    if !shift > 62 then E.corrupt "varint overflow";
    let c = Char.code s.[!pos] in
    incr pos;
    x := !x lor ((c land 0x7f) lsl !shift);
    shift := !shift + 7;
    if c land 0x80 = 0 then fin := true
  done;
  !x

(* Same definition as the wire protocol's frame checksum. *)
let sum16 s off len =
  let acc = ref 0 in
  for i = off to off + len - 1 do
    acc := !acc + Char.code s.[i]
  done;
  !acc land 0xffff

(* ---------------------------------------------------------------- encode *)

let encode g =
  let b = Buffer.create (16 + (2 * Graph.m g)) in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr version);
  put_varint b (Graph.n g);
  put_varint b (Graph.m g);
  let pu = ref (-1) and pv = ref 0 in
  Graph.iter_edges g (fun u v ->
      let du = u - !pu in
      put_varint b du;
      if du > 0 then put_varint b (v - u - 1) else put_varint b (v - !pv - 1);
      pu := u;
      pv := v);
  let body = Buffer.contents b in
  let ck = sum16 body (String.length magic) (String.length body - String.length magic) in
  Buffer.add_char b (Char.chr (ck land 0xff));
  Buffer.add_char b (Char.chr ((ck lsr 8) land 0xff));
  Buffer.contents b

(* ---------------------------------------------------------------- decode *)

let decode s =
  let len = String.length s in
  let mlen = String.length magic in
  if len < mlen || String.sub s 0 mlen <> magic then E.corrupt "bad magic (not a snapshot)";
  if len < mlen + 1 + 2 + 2 then E.truncated "snapshot shorter than its fixed header";
  let stored = Char.code s.[len - 2] lor (Char.code s.[len - 1] lsl 8) in
  let computed = sum16 s mlen (len - 2 - mlen) in
  if stored <> computed then
    E.corrupt "checksum mismatch (stored %04x, computed %04x)" stored computed;
  let v = Char.code s.[mlen] in
  if v <> version then E.corrupt "unsupported snapshot version %d" v;
  let pos = ref (mlen + 1) in
  let limit = len - 2 in
  let n = get_varint s pos limit in
  let m = get_varint s pos limit in
  let remaining = ref m in
  let pu = ref (-1) and pv = ref 0 in
  let rec step () =
    if !remaining = 0 then begin
      if !pos <> limit then E.corrupt "%d trailing bytes after the last edge" (limit - !pos);
      Seq.Nil
    end
    else begin
      decr remaining;
      let du = get_varint s pos limit in
      let dv = get_varint s pos limit in
      let u = !pu + du in
      let v = if du > 0 then u + 1 + dv else !pv + 1 + dv in
      if u < 0 || v < 0 || u >= n || v >= n then
        E.corrupt "decoded edge (%d,%d) out of range (n=%d)" u v n;
      pu := u;
      pv := v;
      Seq.Cons ((u, v), step)
    end
  in
  let g = Graph.of_edge_seq ~n step in
  if Graph.m g <> m then
    E.corrupt "header declares m=%d but %d distinct edges decoded" m (Graph.m g);
  g

(* ------------------------------------------------------------------ file *)

let save g path =
  try Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (encode g))
  with Sys_error msg -> E.io "%s" msg

let load path =
  let content =
    try In_channel.with_open_bin path In_channel.input_all with Sys_error msg -> E.io "%s" msg
  in
  decode content
