(** The typed failure taxonomy of the dataset subsystem, mirroring
    [lib/wire]'s [Wire_error] discipline: every parser, codec and registry
    layer fails closed by raising {!Dataset_error} with a kind naming what
    was wrong and where, never by returning a half-built graph.

    The split matters to callers the same way it does on the wire: a
    malformed input file ([Bad_header], [Bad_line], [Out_of_range]) is the
    data's fault; [Truncated]/[Corrupt] mean a snapshot's framing or
    checksum broke; [Bad_manifest]/[Unknown_dataset] are registry-level;
    [Io] wraps the operating system. *)

type kind =
  | Bad_header of string  (** missing or malformed DIMACS [p]-line, count mismatch *)
  | Bad_line of { line : int; msg : string }  (** a body line that does not parse *)
  | Out_of_range of { line : int; value : int; n : int }
      (** a vertex outside the declared range *)
  | Truncated of string  (** the input ended before the format said it would *)
  | Corrupt of string  (** bad magic, bad varint, checksum mismatch, trailing bytes *)
  | Bad_manifest of string  (** registry manifest fails validation *)
  | Unknown_dataset of string  (** a name the registry does not hold *)
  | Io of string  (** an [Unix]/[Sys_error]-level failure, wrapped *)

exception Dataset_error of kind

(** A one-line human-readable rendering of the kind (also used by the
    registered [Printexc] printer). *)
val message : kind -> string

(** {2 Raising helpers} — printf-style, one per kind that carries prose. *)

val bad_header : ('a, unit, string, 'b) format4 -> 'a
val bad_line : line:int -> ('a, unit, string, 'b) format4 -> 'a
val out_of_range : line:int -> value:int -> n:int -> 'a
val truncated : ('a, unit, string, 'b) format4 -> 'a
val corrupt : ('a, unit, string, 'b) format4 -> 'a
val bad_manifest : ('a, unit, string, 'b) format4 -> 'a
val unknown_dataset : string -> 'a
val io : ('a, unit, string, 'b) format4 -> 'a
