(** The CONGEST triangle-freeness tester in the style of Censor-Hillel et
    al. [10]: every round each vertex probes a random neighbour pair (u, w)
    by sending u's id to w, who checks {u, w} locally — any hit is a real
    triangle (one-sided).  Θ(1/ǫ²) rounds, O(log n)-bit messages.

    Runs halt the round a triangle is first recorded, so the round budget is
    an upper bound, not the execution count; the message schedule is
    budget-independent (a node's probes depend only on its seeded rng and
    inbox history), so one halted run answers every budget question. *)

open Tfree_graph

type state = { found : Triangle.triangle option }

val algorithm : state Simulator.algorithm

type result = {
  triangle : Triangle.triangle option;
  rounds : int;  (** rounds actually executed (= [stats.rounds_run]), not the budget *)
  budget : int;  (** the hard round budget the run was given *)
  stats : Simulator.stats;
}

(** [true] when any node has recorded a triangle — the tester's halt
    predicate. *)
val detected : state array -> bool

(** The paper-shaped default budget ceil(c/ǫ²) (c defaults to 2). *)
val default_budget : ?c:float -> eps:float -> unit -> int

(** The default CONGEST bandwidth, ⌈log₂ n⌉ + 1 bits. *)
val default_b_bits : n:int -> int

(** Run under a hard round budget ([rounds], default ceil(c/ǫ²)) with
    [b_bits]-bit bandwidth (default ⌈log₂ n⌉ + 1), halting on first
    detection; [stats.outcome] is [Halted] on detection, [Budget_exhausted]
    when the budget ran out first.  [tap] observes every charged message and
    attributes it to its round's trace span. *)
val test :
  ?c:float ->
  ?rounds:int ->
  ?b_bits:int ->
  ?tap:Tfree_comm.Channel.tap ->
  Graph.t ->
  eps:float ->
  seed:int ->
  result

(** First round at which any node records a triangle (one halted run at
    budget [max_rounds]); [None] if no detection within it.  Detection
    within budget R ⟺ [first_detection_round <= R].
    @raise Invalid_argument when [max_rounds < 1]. *)
val first_detection_round : ?b_bits:int -> Graph.t -> seed:int -> max_rounds:int -> int option

(** Smallest budget on the geometric grid {1, 2, 4, ...} (capped at
    [max_rounds]) at which the seeded run detects a triangle, [None] if the
    largest grid point within the cap does not detect — the reproducible
    statistic E19 and E27 plot.
    @raise Invalid_argument when [max_rounds < 1]. *)
val rounds_to_detect : ?b_bits:int -> Graph.t -> seed:int -> max_rounds:int -> int option
