(** The CONGEST triangle-freeness tester in the style of Censor-Hillel et
    al. [10]: O(1/ǫ²) rounds, O(log n)-bit messages.

    Each round, every vertex v with degree ≥ 2 picks a uniformly random pair
    of its neighbours (u, w) and sends u's identifier to w.  A vertex w
    receiving "u" from v knows {v, w} (its own edge) and {v, u} (v vouches
    for an edge it holds), and checks {u, w} locally — a hit is a real
    triangle (one-sided).  On a graph ǫ-far from triangle-free, a constant
    fraction of the ǫ·m disjoint triangle-vees is hit per round in
    expectation, so Θ(1/ǫ²) rounds detect w.h.p.

    The tester runs under a hard round budget and halts the simulation the
    round a triangle is first recorded: [rounds] in the result is the count
    of rounds actually executed ([stats.rounds_run]), not the requested
    budget, and [stats.outcome] says which way the run ended.  Because a
    node's probe schedule depends only on its seeded rng stream and its
    inbox history — never on the budget — the message schedule is
    budget-independent: detection within budget R is equivalent to the
    first-detection round being ≤ R, which {!first_detection_round} exploits
    to answer every budget question with a single halted run. *)

open Tfree_util
open Tfree_graph

type state = { found : Triangle.triangle option }

let algorithm : state Simulator.algorithm =
  {
    init = (fun ~n:_ _v _nbrs -> { found = None });
    round =
      (fun ~n ~round:_ v st ~rng ~inbox ~neighbors ->
        (* Check incoming probes first: (sender, claimed neighbour of sender). *)
        let found =
          List.fold_left
            (fun acc (sender, msg) ->
              match acc with
              | Some _ -> acc
              | None -> begin
                  match Tfree_comm.Msg.get_vertex_opt msg with
                  | Some u when u <> v && Array.exists (( = ) u) neighbors ->
                      Some (Triangle.normalize (sender, u, v))
                  | _ -> None
                end)
            st.found inbox
        in
        (* Emit this round's probe: a random neighbour pair (u, w). *)
        let deg = Array.length neighbors in
        let outbox =
          if deg < 2 then []
          else begin
            let i = Rng.int rng deg in
            let j = (i + 1 + Rng.int rng (deg - 1)) mod deg in
            [ (neighbors.(j), Tfree_comm.Msg.vertex_opt ~n (Some neighbors.(i))) ]
          end
        in
        ({ found }, outbox))
  }

type result = {
  triangle : Triangle.triangle option;
  rounds : int;  (** rounds actually executed (= [stats.rounds_run]) *)
  budget : int;  (** the hard round budget the run was given *)
  stats : Simulator.stats;
}

let detected states = Array.exists (fun (st : state) -> st.found <> None) states

(** The paper-shaped default budget: ceil(c/ǫ²) rounds (c defaults to 2). *)
let default_budget ?(c = 2.0) ~eps () = max 1 (int_of_float (Float.ceil (c /. (eps *. eps))))

(** Default CONGEST bandwidth: one flag bit plus a vertex identifier,
    ⌈log₂ n⌉ + 1 bits. *)
let default_b_bits ~n = 1 + Tfree_util.Bits.vertex ~n

(** Run the tester under a hard round budget ([rounds], defaulting to
    ceil(c/ǫ²)) with [b_bits]-bit bandwidth (defaulting to log n + 1);
    halts the round a triangle is first recorded, so [result.rounds] is the
    rounds actually executed and [stats.outcome] is [Halted] on detection,
    [Budget_exhausted] otherwise. *)
let test ?(c = 2.0) ?rounds ?b_bits ?tap g ~eps ~seed =
  let n = Graph.n g in
  let budget = match rounds with Some r -> r | None -> default_budget ~c ~eps () in
  let b_bits = match b_bits with Some b -> b | None -> default_b_bits ~n in
  let states, stats = Simulator.run ~halt:detected ?tap g ~b_bits ~rounds:budget ~seed algorithm in
  let triangle =
    Array.fold_left
      (fun acc st -> match acc with Some _ -> acc | None -> st.found)
      None states
  in
  { triangle; rounds = stats.Simulator.rounds_run; budget; stats }

(** The first round at which any node records a triangle, found with one
    halted run at budget [max_rounds]; [None] if no node detects within it.
    Budget-independence of the message schedule (module comment) makes this
    the complete answer to every budget question up to [max_rounds]:
    detection within budget R holds iff [first_detection_round <= R]. *)
let first_detection_round ?b_bits g ~seed ~max_rounds =
  if max_rounds < 1 then invalid_arg "Triangle_tester.first_detection_round: max_rounds must be positive";
  let n = Graph.n g in
  let b_bits = match b_bits with Some b -> b | None -> default_b_bits ~n in
  let _, stats = Simulator.run ~halt:detected ~b_bits ~rounds:max_rounds ~seed g algorithm in
  match stats.Simulator.outcome with
  | Simulator.Halted -> Some stats.Simulator.rounds_run
  | Simulator.Budget_exhausted -> None

(* Smallest grid point >= r on the geometric budget grid {1, 2, 4, ...}. *)
let next_grid r =
  let rec go p = if p >= r then p else go (2 * p) in
  go 1

(** Rounds until first detection, reported on the geometric budget grid
    {1, 2, 4, 8, ...} capped at [max_rounds]: the returned value is the
    smallest power-of-two budget within the cap at which the (seeded,
    deterministic) run detects, [None] if even the largest grid point
    ≤ [max_rounds] does not — exactly what scanning budgets 1, 2, 4, ...
    with independent runs of the same seed returns, computed with a single
    halted run.  E19 plots this statistic against ǫ. *)
let rounds_to_detect ?b_bits g ~seed ~max_rounds =
  if max_rounds < 1 then invalid_arg "Triangle_tester.rounds_to_detect: max_rounds must be positive";
  (* largest grid point within the cap — budgets beyond it were never
     candidates for the scan, so detection past it still reports None *)
  let cap = ref 1 in
  while 2 * !cap <= max_rounds do cap := 2 * !cap done;
  match first_detection_round ?b_bits g ~seed ~max_rounds:!cap with
  | Some first -> Some (next_grid first)
  | None -> None
