(** Synchronous CONGEST simulator ([10, 19]'s model): one node per vertex,
    synchronous rounds, at most [b_bits] bits per incident edge per round —
    the bandwidth cap is enforced at runtime.  Rounds are a budgeted
    resource too: [run] executes at most [rounds] rounds and reports as a
    typed {!outcome} whether the halt predicate fired ({!Halted}) or the
    budget ran out first ({!Budget_exhausted}) — a verdict, not an error. *)

open Tfree_graph

exception Bandwidth_exceeded of { round : int; src : int; dst : int; bits : int }

type 'st algorithm = {
  init : n:int -> int -> int array -> 'st;
      (** [init ~n v neighbors]: starting state of node [v]. *)
  round :
    n:int ->
    round:int ->
    int ->
    'st ->
    rng:Tfree_util.Rng.t ->
    inbox:(int * Tfree_comm.Msg.t) list ->
    neighbors:int array ->
    'st * (int * Tfree_comm.Msg.t) list;
      (** One synchronous round at node [v]: consume the inbox
          (sender, message), emit an outbox (neighbour, message). *)
}

(** How a run ended: the halt predicate fired inside the budget, or the
    round budget ran out first. *)
type outcome = Halted | Budget_exhausted

(** One executed round's slice of the traffic ledger. *)
type round_stat = {
  round_bits : int;  (** message bits charged this round *)
  round_messages : int;  (** messages sent this round *)
  round_max_message_bits : int;  (** largest single message this round *)
}

type stats = {
  rounds_run : int;  (** executed rounds, <= the requested budget *)
  total_message_bits : int;
  max_message_bits : int;
  messages : int;
  outcome : outcome;
  round_stats : round_stat array;
      (** one entry per executed round, in order; sums and maxima reconcile
          with the totals exactly (asserted by [run] before returning) *)
}

val outcome_to_string : outcome -> string

(** Phase label of round [r]'s {!Tfree_trace.Trace.span} ("round-<r>",
    1-based) — what a congest trace's per-phase rows decompose by. *)
val round_label : int -> string

(** Execute up to [rounds] synchronous rounds; returns final node states and
    traffic statistics with the per-round ledger.  [halt], checked on the
    states after each round, ends the run early with [outcome = Halted];
    otherwise the run ends with [outcome = Budget_exhausted] after exactly
    [rounds] rounds.  [tap] observes every charged message (channel
    [From_player src], 1-based round) and wraps each executed round in a
    [Trace.span] labelled with {!round_label}, so traces decompose by round.
    @raise Invalid_argument when [rounds <= 0] or [b_bits < 0], and on
    sends to non-neighbours
    @raise Bandwidth_exceeded when a message exceeds [b_bits] *)
val run :
  ?halt:('st array -> bool) ->
  ?tap:Tfree_comm.Channel.tap ->
  Graph.t ->
  b_bits:int ->
  rounds:int ->
  seed:int ->
  'st algorithm ->
  'st array * stats
