(** Synchronous CONGEST simulator — the distributed model the paper's first
    motivation comes from ([10, 19]: property testing in CONGEST, whose lower
    bounds are expected to require communication-complexity advances like
    this paper's).

    n nodes, one per graph vertex; computation proceeds in synchronous
    rounds; in each round a node may send one message of at most [b_bits]
    bits along each incident edge (the bandwidth cap is enforced — oversized
    messages raise).  Nodes know n, their own id, their incident edges, and
    a private random stream.

    Rounds are a budgeted resource, exactly like bits: [run] executes at
    most [rounds] synchronous rounds and reports how the run ended as a
    typed {!outcome} — {!Halted} when the optional halt predicate fired,
    {!Budget_exhausted} when the budget ran out first.  Running out of
    rounds is a verdict (the Assadi–Sundaresan question: where does
    detection collapse as the budget shrinks?), not an error, which is why
    it is an outcome and not an exception like {!Bandwidth_exceeded}. *)

open Tfree_util
open Tfree_graph

exception Bandwidth_exceeded of { round : int; src : int; dst : int; bits : int }

type 'st algorithm = {
  init : n:int -> int -> int array -> 'st;
      (** [init ~n v neighbors]: starting state of node [v]. *)
  round :
    n:int ->
    round:int ->
    int ->
    'st ->
    rng:Rng.t ->
    inbox:(int * Tfree_comm.Msg.t) list ->
    neighbors:int array ->
    'st * (int * Tfree_comm.Msg.t) list;
      (** One synchronous round at node [v]: consume the inbox (sender,
          message) and emit an outbox (neighbour, message).  Sending to a
          non-neighbour raises. *)
}

type outcome = Halted | Budget_exhausted

type round_stat = {
  round_bits : int;
  round_messages : int;
  round_max_message_bits : int;
}

type stats = {
  rounds_run : int;
  total_message_bits : int;
  max_message_bits : int;
  messages : int;
  outcome : outcome;
  round_stats : round_stat array;  (* one per executed round, in order *)
}

let outcome_to_string = function
  | Halted -> "halted"
  | Budget_exhausted -> "budget-exhausted"

(* Phase label the per-round Trace.span uses; 1-based like the tap's round
   argument, so a trace decomposes by "round-1", "round-2", ... *)
let round_label r = "round-" ^ string_of_int r

(* The accounting identity, checked before [run] returns: the per-round
   ledger must reconcile with the totals exactly — sum of round bits =
   total bits, sum of round messages = messages, max over round maxima =
   overall max, one stat per executed round.  A failure here is a simulator
   bug, so it fails loudly rather than returning skewed numbers. *)
let check_conservation st =
  let sum_bits = Array.fold_left (fun a r -> a + r.round_bits) 0 st.round_stats in
  let sum_msgs = Array.fold_left (fun a r -> a + r.round_messages) 0 st.round_stats in
  let max_bits = Array.fold_left (fun a r -> max a r.round_max_message_bits) 0 st.round_stats in
  if
    sum_bits <> st.total_message_bits
    || sum_msgs <> st.messages
    || max_bits <> st.max_message_bits
    || Array.length st.round_stats <> st.rounds_run
  then
    failwith
      (Printf.sprintf
         "Congest.run: per-round accounting broken (sum %d bits vs total %d, %d msgs vs %d, max %d \
          vs %d, %d stats vs %d rounds)"
         sum_bits st.total_message_bits sum_msgs st.messages max_bits st.max_message_bits
         (Array.length st.round_stats) st.rounds_run)

(** [run g ~b_bits ~rounds ~seed alg] executes up to [rounds] synchronous
    rounds and returns the final node states and traffic statistics,
    including the per-round ledger ([round_stats]) whose sums reconcile with
    the totals exactly (asserted before returning).

    [halt], checked on the node states after each round, stops the run early
    with [outcome = Halted]; without it (or if it never fires) the run ends
    with [outcome = Budget_exhausted] after exactly [rounds] rounds.
    Messages sent in the final round are charged but never delivered.

    [tap] observes every charged message at its charging point — the channel
    is [From_player src] (the sending node's upload) and the round is
    1-based, matching [round_stats] indexing — and each executed round runs
    inside a [Trace.span] labelled ["round-<r>"], so a trace collector
    decomposes the run by round exactly as serve traces decompose by phase.

    @raise Invalid_argument when [rounds <= 0] or [b_bits < 0] (a budget of
    zero rounds is a degenerate question, asked loudly rather than answered
    with an empty run), and on sends to non-neighbours
    @raise Bandwidth_exceeded when a message exceeds [b_bits] *)
let run ?halt ?tap g ~b_bits ~rounds ~seed alg =
  if rounds <= 0 then invalid_arg "Congest.run: rounds must be positive";
  if b_bits < 0 then invalid_arg "Congest.run: b_bits must be non-negative";
  let n = Graph.n g in
  let root = Rng.create seed in
  let rngs = Array.init n (fun v -> Rng.split root (v + 1)) in
  let states = Array.init n (fun v -> alg.init ~n v (Graph.neighbors g v)) in
  let inboxes : (int * Tfree_comm.Msg.t) list array = Array.make n [] in
  let total = ref 0 and max_bits = ref 0 and messages = ref 0 in
  let round_acc = ref [] in
  let halted = ref false in
  let executed = ref 0 in
  while (not !halted) && !executed < rounds do
    let r = !executed in
    let body () =
      let outgoing = Array.make n [] in
      let rb = ref 0 and rm = ref 0 and rmax = ref 0 in
      for v = 0 to n - 1 do
        let st, outbox =
          alg.round ~n ~round:r v states.(v) ~rng:rngs.(v) ~inbox:inboxes.(v)
            ~neighbors:(Graph.neighbors g v)
        in
        states.(v) <- st;
        List.iter
          (fun (dst, msg) ->
            if not (Graph.mem_edge g v dst) then
              invalid_arg "Congest.run: send to non-neighbour";
            let bits = Tfree_comm.Msg.bits msg in
            if bits > b_bits then raise (Bandwidth_exceeded { round = r; src = v; dst; bits });
            (* the charging point: taps preserve value and bit count, so the
               receiver observes a faithful copy and the ledger is unchanged *)
            let msg =
              match tap with
              | None -> msg
              | Some t -> t.Tfree_comm.Channel.deliver ~round:(r + 1) (Tfree_comm.Channel.From_player v) msg
            in
            total := !total + bits;
            rb := !rb + bits;
            max_bits := max !max_bits bits;
            rmax := max !rmax bits;
            incr messages;
            incr rm;
            outgoing.(dst) <- (v, msg) :: outgoing.(dst))
          outbox
      done;
      Array.blit outgoing 0 inboxes 0 n;
      round_acc :=
        { round_bits = !rb; round_messages = !rm; round_max_message_bits = !rmax } :: !round_acc
    in
    (* span per round only when someone is observing: an untapped run pays
       no tracing overhead on its (possibly very long) round loop *)
    (match tap with
    | None -> body ()
    | Some _ -> Tfree_trace.Trace.span (round_label (r + 1)) body);
    incr executed;
    match halt with
    | Some h when h states -> halted := true
    | _ -> ()
  done;
  let stats =
    {
      rounds_run = !executed;
      total_message_bits = !total;
      max_message_bits = !max_bits;
      messages = !messages;
      outcome = (if !halted then Halted else Budget_exhausted);
      round_stats = Array.of_list (List.rev !round_acc);
    }
  in
  check_conservation stats;
  (states, stats)
