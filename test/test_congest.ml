(* The congest property/invariant harness (ISSUE 10): unit tests pinning the
   round-budget semantics — fail-closed arguments, the per-round accounting
   identity, the early-exit regression, the geometric-scan grid — and qcheck
   properties over random (family, n, seed, budget) cases proving the
   invariants hold across the whole case space: seed-determinism, the
   bandwidth cap, per-round conservation, detection monotonicity in the
   budget, one-sidedness, and the traced-equals-accounted identity. *)

open Tfree_util
open Tfree_graph
module Sim = Tfree_congest.Simulator
module Tester = Tfree_congest.Triangle_tester
module Cgen = Tfree_proptest.Congest_gen
module Trace = Tfree_trace.Trace

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let far_graph ~n seed = Gen.far_with_degree (Rng.create (77_000 + seed)) ~n ~d:5.0 ~eps:0.1

(* ------------------------------------------------------- fail-closed args *)

let test_invalid_arguments () =
  let g = far_graph ~n:30 1 in
  let run rounds b_bits () =
    ignore (Sim.run g ~b_bits ~rounds ~seed:1 Tester.algorithm)
  in
  Alcotest.check_raises "rounds = 0" (Invalid_argument "Congest.run: rounds must be positive")
    (run 0 8);
  Alcotest.check_raises "rounds < 0" (Invalid_argument "Congest.run: rounds must be positive")
    (run (-3) 8);
  Alcotest.check_raises "b_bits < 0" (Invalid_argument "Congest.run: b_bits must be non-negative")
    (run 5 (-1));
  Alcotest.check_raises "first_detection_round cap < 1"
    (Invalid_argument "Triangle_tester.first_detection_round: max_rounds must be positive")
    (fun () -> ignore (Tester.first_detection_round g ~seed:1 ~max_rounds:0));
  Alcotest.check_raises "rounds_to_detect cap < 1"
    (Invalid_argument "Triangle_tester.rounds_to_detect: max_rounds must be positive")
    (fun () -> ignore (Tester.rounds_to_detect g ~seed:1 ~max_rounds:0))

(* --------------------------------------------- per-round ledger (fixed run) *)

let sum_round_bits (st : Sim.stats) =
  Array.fold_left (fun a (r : Sim.round_stat) -> a + r.Sim.round_bits) 0 st.Sim.round_stats

let sum_round_messages (st : Sim.stats) =
  Array.fold_left (fun a (r : Sim.round_stat) -> a + r.Sim.round_messages) 0 st.Sim.round_stats

let max_round_bits (st : Sim.stats) =
  Array.fold_left (fun a (r : Sim.round_stat) -> max a r.Sim.round_max_message_bits) 0 st.Sim.round_stats

let test_round_stats_conservation () =
  let g = far_graph ~n:60 2 in
  let _, st = Sim.run g ~b_bits:8 ~rounds:20 ~seed:5 Tester.algorithm in
  checki "one stat per executed round" st.Sim.rounds_run (Array.length st.Sim.round_stats);
  checki "no halt: runs the whole budget" 20 st.Sim.rounds_run;
  checkb "no halt: budget exhausted" true (st.Sim.outcome = Sim.Budget_exhausted);
  checki "sum of round bits = total" st.Sim.total_message_bits (sum_round_bits st);
  checki "sum of round messages = messages" st.Sim.messages (sum_round_messages st);
  checki "max over rounds = overall max" st.Sim.max_message_bits (max_round_bits st);
  checkb "traffic actually flowed" true (st.Sim.total_message_bits > 0)

(* ------------------------------------------------- early-exit regression *)

(* On K4 every delivered probe closes a triangle, whatever the rng draws:
   round 1 only sends, round 2 delivers — detection at exactly round 2.  The
   regression: [result.rounds] must be the 2 executed rounds, not the
   requested budget. *)
let test_early_exit_surfaces_rounds_run () =
  let g = Gen.complete ~n:4 in
  let r = Tester.test ~rounds:50 g ~eps:0.1 ~seed:11 in
  checkb "triangle found" true (r.Tester.triangle <> None);
  checki "rounds is rounds_run, not the budget" 2 r.Tester.rounds;
  checki "stats agree" 2 r.Tester.stats.Sim.rounds_run;
  checki "budget surfaced unchanged" 50 r.Tester.budget;
  checkb "outcome halted" true (r.Tester.stats.Sim.outcome = Sim.Halted);
  (* a budget of 1 charges the sends but never delivers them *)
  let r1 = Tester.test ~rounds:1 g ~eps:0.1 ~seed:11 in
  checkb "budget 1: no detection" true (r1.Tester.triangle = None);
  checkb "budget 1: budget exhausted" true (r1.Tester.stats.Sim.outcome = Sim.Budget_exhausted);
  checki "budget 1: one round ran" 1 r1.Tester.rounds;
  checkb "budget 1: sends were still charged" true (r1.Tester.stats.Sim.total_message_bits > 0)

(* ------------------------------------------------- geometric-scan grid *)

(* [rounds_to_detect] is documented to return exactly what scanning budgets
   1, 2, 4, ... with independent same-seed runs returns; check it against
   that naive scan, including a cap that is not itself a power of two. *)
let test_rounds_to_detect_matches_naive_scan () =
  let naive g ~seed ~max_rounds =
    let rec scan r =
      if r > max_rounds then None
      else if (Tester.test ~rounds:r g ~eps:0.1 ~seed).Tester.triangle <> None then Some r
      else scan (2 * r)
    in
    scan 1
  in
  List.iter
    (fun (g, seed, cap) ->
      let expect = naive g ~seed ~max_rounds:cap in
      Alcotest.(check (option int))
        "grid scan equivalence" expect
        (Tester.rounds_to_detect g ~seed ~max_rounds:cap))
    [
      (far_graph ~n:80 3, 1, 64);
      (far_graph ~n:80 3, 2, 100) (* cap off the grid: largest point is 64 *);
      (Gen.diluted_far (Rng.create 7) ~triangles:6 ~extra_degree:8, 4, 256);
      (Gen.free_with_degree (Rng.create 9) ~n:40 ~d:4.0, 1, 32) (* never detects *);
    ]

(* ------------------------------------------------------- trace integration *)

let test_trace_rounds_match_round_stats () =
  let g = far_graph ~n:50 6 in
  let c = Trace.create () in
  let r =
    Trace.with_collector c (fun () -> Tester.test ~tap:(Trace.tap c) ~rounds:8 g ~eps:0.1 ~seed:3)
  in
  let st = r.Tester.stats in
  checkb "traced = accounted" true (Trace.decomposes c ~accounted:st.Sim.total_message_bits);
  checki "traced messages = accounted" st.Sim.messages (Trace.message_count c);
  (* the per-round trace rows are exactly the non-empty round_stats entries *)
  let expected =
    List.filter
      (fun (_, m, _) -> m > 0)
      (List.mapi
         (fun i (rs : Sim.round_stat) -> (i + 1, rs.Sim.round_messages, rs.Sim.round_bits))
         (Array.to_list st.Sim.round_stats))
  in
  Alcotest.(check (list (triple int int int))) "round_rows = round_stats" expected (Trace.round_rows c);
  (* and they survive the round-trip through the Chrome trace file *)
  let json = Trace.to_chrome c in
  Alcotest.(check (list (triple int int int)))
    "round_rows_of_chrome agrees" (Trace.round_rows c) (Trace.round_rows_of_chrome json);
  (* every executed round ran inside its "round-N" span *)
  let span_names = List.map (fun (s : Trace.span_rec) -> s.Trace.name) (Trace.spans c) in
  Alcotest.(check (list string))
    "one span per executed round"
    (List.init st.Sim.rounds_run (fun i -> Sim.round_label (i + 1)))
    span_names

(* ------------------------------------------------------ qcheck properties *)

let qcount = 120

let prop_deterministic =
  QCheck.Test.make ~name:"congest run is seed-deterministic" ~count:qcount Cgen.arbitrary
    (fun case ->
      let g = Cgen.graph case in
      let run () = Tester.test ~rounds:case.Cgen.budget g ~eps:0.1 ~seed:case.Cgen.seed in
      let a = run () and b = run () in
      a.Tester.triangle = b.Tester.triangle && a.Tester.stats = b.Tester.stats)

let prop_bandwidth_cap =
  QCheck.Test.make ~name:"bandwidth cap never exceeded at b_bits = log n" ~count:qcount
    Cgen.arbitrary (fun case ->
      let g = Cgen.graph case in
      let b = Tester.default_b_bits ~n:(Graph.n g) in
      let r = Tester.test ~rounds:case.Cgen.budget ~b_bits:b g ~eps:0.1 ~seed:case.Cgen.seed in
      (* Simulator.run raises on violation; the recorded maxima agree *)
      r.Tester.stats.Sim.max_message_bits <= b
      && max_round_bits r.Tester.stats <= b)

let prop_conservation =
  QCheck.Test.make ~name:"per-round stats conservation" ~count:qcount Cgen.arbitrary (fun case ->
      let g = Cgen.graph case in
      let r = Tester.test ~rounds:case.Cgen.budget g ~eps:0.1 ~seed:case.Cgen.seed in
      let st = r.Tester.stats in
      sum_round_bits st = st.Sim.total_message_bits
      && sum_round_messages st = st.Sim.messages
      && max_round_bits st = st.Sim.max_message_bits
      && Array.length st.Sim.round_stats = st.Sim.rounds_run)

let prop_monotone_in_budget =
  QCheck.Test.make ~name:"detection is monotone in the round budget" ~count:qcount Cgen.arbitrary
    (fun case ->
      let g = Cgen.graph case in
      let detected budget =
        (Tester.test ~rounds:budget g ~eps:0.1 ~seed:case.Cgen.seed).Tester.triangle <> None
      in
      (not (detected case.Cgen.budget)) || detected (2 * case.Cgen.budget))

let prop_one_sided =
  QCheck.Test.make ~name:"any reported triangle is real" ~count:qcount Cgen.arbitrary (fun case ->
      let g = Cgen.graph case in
      match (Tester.test ~rounds:case.Cgen.budget g ~eps:0.1 ~seed:case.Cgen.seed).Tester.triangle with
      | None -> true
      | Some t -> Triangle.is_triangle g t)

let prop_traced_equals_total =
  QCheck.Test.make ~name:"traced bits = per-round sum = total bits" ~count:qcount Cgen.arbitrary
    (fun case ->
      let g = Cgen.graph case in
      let c = Trace.create () in
      let r =
        Trace.with_collector c (fun () ->
            Tester.test ~tap:(Trace.tap c) ~rounds:case.Cgen.budget g ~eps:0.1 ~seed:case.Cgen.seed)
      in
      let st = r.Tester.stats in
      Trace.total_bits c = st.Sim.total_message_bits
      && sum_round_bits st = st.Sim.total_message_bits
      && Trace.message_count c = st.Sim.messages)

let qcheck_props =
  [
    prop_deterministic;
    prop_bandwidth_cap;
    prop_conservation;
    prop_monotone_in_budget;
    prop_one_sided;
    prop_traced_equals_total;
  ]

let () =
  Alcotest.run "tfree_congest"
    [
      ( "budget",
        [
          Alcotest.test_case "invalid arguments fail closed" `Quick test_invalid_arguments;
          Alcotest.test_case "round stats conservation" `Quick test_round_stats_conservation;
          Alcotest.test_case "early exit surfaces rounds_run" `Quick test_early_exit_surfaces_rounds_run;
          Alcotest.test_case "rounds_to_detect grid" `Quick test_rounds_to_detect_matches_naive_scan;
          Alcotest.test_case "trace rounds match round_stats" `Quick test_trace_rounds_match_round_stats;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
