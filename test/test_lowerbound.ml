(* Tests for Tfree_lowerbound: information theory, the hard distribution µ,
   the Boolean-Matching reduction, symmetrization, embedding, and the
   budgeted protocol variants. *)

open Tfree_util
open Tfree_graph
open Tfree_lowerbound

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let near ?(tol = 1e-9) a b = Float.abs (a -. b) <= tol

(* ----------------------------------------------------------------- Info *)

let test_entropy_basics () =
  checkb "uniform 2 = 1 bit" true (near (Info.entropy [| 0.5; 0.5 |]) 1.0);
  checkb "deterministic = 0" true (near (Info.entropy [| 1.0; 0.0 |]) 0.0);
  checkb "uniform 4 = 2 bits" true (near (Info.entropy [| 0.25; 0.25; 0.25; 0.25 |]) 2.0)

let test_kl_nonnegative_and_zero_iff_equal () =
  let mu = [| 0.3; 0.7 |] and eta = [| 0.6; 0.4 |] in
  checkb "positive" true (Info.kl_divergence mu eta > 0.0);
  checkb "zero on equal" true (near (Info.kl_divergence mu mu) 0.0)

let test_kl_infinite_on_support_mismatch () =
  checkb "infinite" true (Float.is_integer (Info.kl_divergence [| 0.5; 0.5 |] [| 1.0; 0.0 |]) = false
                          || Info.kl_divergence [| 0.5; 0.5 |] [| 1.0; 0.0 |] = infinity);
  checkb "is inf" true (Info.kl_divergence [| 0.5; 0.5 |] [| 1.0; 0.0 |] = infinity)

let test_kl_size_mismatch () =
  Alcotest.check_raises "size" (Invalid_argument "Info.kl_divergence: size mismatch") (fun () ->
      ignore (Info.kl_divergence [| 1.0 |] [| 0.5; 0.5 |]))

let test_lemma_4_3_grid () =
  (* D(q || p) >= q - 2p for p < 1/2, over a dense grid. *)
  let steps = 60 in
  for pi = 1 to steps - 1 do
    let p = 0.5 *. float_of_int pi /. float_of_int steps in
    for qi = 1 to steps - 1 do
      let q = float_of_int qi /. float_of_int steps in
      let d = Info.binary_kl ~q ~p in
      checkb
        (Printf.sprintf "D(%.3f||%.3f)=%.4f >= %.4f" q p d (Info.lemma_4_3_bound ~q ~p))
        true
        (d >= Info.lemma_4_3_bound ~q ~p -. 1e-9)
    done
  done

let test_mutual_information_independent () =
  (* independent bits: I = 0 *)
  let j = [| [| 0.25; 0.25 |]; [| 0.25; 0.25 |] |] in
  checkb "independent" true (near (Info.mutual_information j) 0.0)

let test_mutual_information_identical () =
  (* Y = X uniform bit: I = 1 *)
  let j = [| [| 0.5; 0.0 |]; [| 0.0; 0.5 |] |] in
  checkb "copy channel" true (near (Info.mutual_information j) 1.0)

let test_mutual_information_two_forms_agree () =
  (* Definition 9's two expressions coincide, on random joints. *)
  let rng = Rng.create 7 in
  for _ = 1 to 20 do
    let raw = Array.init 3 (fun _ -> Array.init 4 (fun _ -> Rng.float rng +. 0.01)) in
    let total = Array.fold_left (fun a row -> Array.fold_left ( +. ) a row) 0.0 raw in
    let j = Array.map (Array.map (fun x -> x /. total)) raw in
    checkb "direct = via KL" true
      (near ~tol:1e-9 (Info.mutual_information j) (Info.mutual_information_via_kl j))
  done

let test_mutual_information_bounded_by_entropy () =
  let rng = Rng.create 8 in
  for _ = 1 to 20 do
    let raw = Array.init 4 (fun _ -> Array.init 3 (fun _ -> Rng.float rng +. 0.01)) in
    let total = Array.fold_left (fun a row -> Array.fold_left ( +. ) a row) 0.0 raw in
    let j = Array.map (Array.map (fun x -> x /. total)) raw in
    let i = Info.mutual_information j in
    checkb "I <= H(X)" true (i <= Info.entropy (Info.marginal_x j) +. 1e-9);
    checkb "I <= H(Y)" true (i <= Info.entropy (Info.marginal_y j) +. 1e-9)
  done

let test_superadditivity_lemma_4_2 () =
  (* X1, X2 independent bits, Y = (X1, X2) jointly: I(X1X2;Y) >= I(X1;Y) +
     I(X2;Y).  Build empirically from samples of a noisy channel. *)
  let rng = Rng.create 9 in
  let samples =
    List.init 20_000 (fun _ ->
        let x1 = Rng.int rng 2 and x2 = Rng.int rng 2 in
        let y = if Rng.bool rng ~p:0.15 then Rng.int rng 4 else (2 * x1) + x2 in
        (x1, x2, y))
  in
  let joint12 = Info.empirical_joint ~nx:4 ~ny:4 (List.map (fun (a, b, y) -> ((2 * a) + b, y)) samples) in
  let joint1 = Info.empirical_joint ~nx:2 ~ny:4 (List.map (fun (a, _, y) -> (a, y)) samples) in
  let joint2 = Info.empirical_joint ~nx:2 ~ny:4 (List.map (fun (_, b, y) -> (b, y)) samples) in
  let lhs = Info.mutual_information joint12 in
  let rhs = Info.mutual_information joint1 +. Info.mutual_information joint2 in
  checkb (Printf.sprintf "superadditive (%.4f >= %.4f)" lhs rhs) true (lhs >= rhs -. 0.01)

let test_empirical_joint_normalized () =
  let j = Info.empirical_joint ~nx:2 ~ny:2 [ (0, 0); (0, 1); (1, 1); (1, 1) ] in
  checkb "normalized" true
    (near (Array.fold_left (fun a row -> Array.fold_left ( +. ) a row) 0.0 j) 1.0);
  checkb "cell" true (near j.(1).(1) 0.5)

(* -------------------------------------------------------------- Mu_dist *)

let test_mu_is_tripartite_split () =
  let rng = Rng.create 10 in
  let g, parts = Mu_dist.sample_partition rng ~part:40 ~gamma:2.0 in
  checki "three players" 3 (Tfree_graph.Partition.k parts);
  checkb "union is the graph" true (Graph.equal (Tfree_graph.Partition.union parts) g);
  (* Alice holds only U×V1 edges *)
  Graph.iter_edges (Tfree_graph.Partition.player parts 0) (fun u v ->
      checkb "alice side" true (u / 40 = 0 && v / 40 = 1));
  Graph.iter_edges (Tfree_graph.Partition.player parts 2) (fun u v ->
      checkb "charlie side" true (u / 40 = 1 && v / 40 = 2))

let test_mu_lemma_4_5 () =
  let rng = Rng.create 11 in
  let far_frac, norm_packing = Mu_dist.lemma_4_5_stats rng ~part:60 ~gamma:2.0 ~eps:0.05 ~trials:10 in
  checkb (Printf.sprintf "far fraction %.2f >= 1/2" far_frac) true (far_frac >= 0.5);
  checkb (Printf.sprintf "packing/n^1.5 = %.4f constant" norm_packing) true (norm_packing > 0.001)

let test_mu_stats_consistent () =
  let rng = Rng.create 12 in
  let g = Mu_dist.sample rng ~part:50 ~gamma:2.0 in
  let s = Mu_dist.stats g in
  checkb "packing <= triangles" true (s.Mu_dist.disjoint_triangles <= s.Mu_dist.triangles);
  checkb "farness consistent" true
    (near ~tol:1e-9 s.Mu_dist.farness_lb
       (float_of_int s.Mu_dist.disjoint_triangles /. float_of_int (max 1 s.Mu_dist.m)))

let test_mu_sample_far () =
  let rng = Rng.create 13 in
  match Mu_dist.sample_far rng ~part:50 ~gamma:2.0 ~eps:0.05 with
  | Some g -> checkb "certified" true (Distance.certified_far g ~eps:0.05)
  | None -> Alcotest.fail "expected a far sample within 200 attempts"

(* ----------------------------------------------------- Boolean matching *)

let test_bm_yes_instance_structure () =
  let rng = Rng.create 14 in
  for n = 3 to 12 do
    let inst = Boolean_matching.generate rng ~n ~target:false in
    checki "all rows zero" n (Boolean_matching.expected_triangles inst);
    let g = Boolean_matching.reduction_graph inst in
    checki "n edge-disjoint triangles" n (List.length (Triangle.greedy_packing g));
    checki "exactly n triangles" n (Triangle.count g)
  done

let test_bm_no_instance_triangle_free () =
  let rng = Rng.create 15 in
  for n = 3 to 12 do
    let inst = Boolean_matching.generate rng ~n ~target:true in
    checki "all rows one" 0 (Boolean_matching.expected_triangles inst);
    let g = Boolean_matching.reduction_graph inst in
    checkb "triangle-free" true (Triangle.is_free g)
  done

let test_bm_partition_union () =
  let rng = Rng.create 16 in
  let inst = Boolean_matching.generate rng ~n:8 ~target:false in
  let parts = Boolean_matching.to_partition inst in
  checkb "union = reduction graph" true
    (Graph.equal (Tfree_graph.Partition.union parts) (Boolean_matching.reduction_graph inst));
  checkb "no duplication" false (Tfree_graph.Partition.has_duplication parts)

let test_bm_constant_degree () =
  let rng = Rng.create 17 in
  let inst = Boolean_matching.generate rng ~n:50 ~target:false in
  let g = Boolean_matching.reduction_graph inst in
  checkb "average degree O(1)" true (Graph.avg_degree g < 3.0)

let test_bm_yes_is_far () =
  (* yes-instances: n edge-disjoint triangles over 4n edges = 1/4-far. *)
  let rng = Rng.create 18 in
  let inst = Boolean_matching.generate rng ~n:20 ~target:false in
  let g = Boolean_matching.reduction_graph inst in
  checkb "1/4-far certified" true (Distance.certified_far g ~eps:0.2)

let test_bm_detectable_by_protocols () =
  (* Our simultaneous tester distinguishes the two promises (2 players). *)
  let rng = Rng.create 19 in
  let yes = Boolean_matching.generate rng ~n:200 ~target:false in
  let no = Boolean_matching.generate rng ~n:200 ~target:true in
  let run inst =
    let parts = Boolean_matching.to_partition inst in
    let d = Graph.avg_degree (Boolean_matching.reduction_graph inst) in
    let detected = ref false in
    for s = 1 to 10 do
      let r = Tfree.Tester.simultaneous ~seed:s Tfree.Params.practical ~d parts in
      match r.Tfree.Tester.verdict with Tfree.Tester.Triangle _ -> detected := true | _ -> ()
    done;
    !detected
  in
  checkb "yes detected" true (run yes);
  checkb "no never detected" false (run no)

(* -------------------------------------------------------- Symmetrization *)

let test_embed_shape () =
  let rng = Rng.create 20 in
  let x = Symmetrization.mu_sampler ~part:20 ~gamma:2.0 rng in
  let inputs = Symmetrization.embed ~k:6 ~i:1 ~j:3 x in
  checki "k players" 6 (Array.length inputs);
  let x1, x2, x3 = x in
  checkb "player i has X1" true (Graph.equal inputs.(1) x1);
  checkb "player j has X2" true (Graph.equal inputs.(3) x2);
  checkb "others have X3" true (Graph.equal inputs.(0) x3 && Graph.equal inputs.(5) x3)

let test_embed_rejects_bad_roles () =
  let rng = Rng.create 21 in
  let x = Symmetrization.mu_sampler ~part:10 ~gamma:2.0 rng in
  Alcotest.check_raises "i=j" (Invalid_argument "Symmetrization.embed: bad player ids") (fun () ->
      ignore (Symmetrization.embed ~k:5 ~i:2 ~j:2 x));
  Alcotest.check_raises "role k-1" (Invalid_argument "Symmetrization.embed: bad player ids")
    (fun () -> ignore (Symmetrization.embed ~k:5 ~i:4 ~j:1 x))

let test_symmetrization_identity () =
  (* Theorem 4.15's accounting: E|Π'| = (2/k)·CC(Π), measured on the capped
     sim-low protocol over the lifted µ. *)
  let rng = Rng.create 22 in
  let k = 5 in
  let protocol = Tfree.Sim_low.protocol Tfree.Params.practical ~d:8.0 in
  let m =
    Symmetrization.measure_identity rng ~k ~trials:60
      ~sample_mu:(Symmetrization.mu_sampler ~part:30 ~gamma:2.0)
      protocol
  in
  let rel = Float.abs (m.Symmetrization.lhs_mean -. m.Symmetrization.rhs_mean) /. Float.max 1.0 m.Symmetrization.rhs_mean in
  checkb
    (Printf.sprintf "identity holds: lhs=%.1f rhs=%.1f rel=%.3f" m.Symmetrization.lhs_mean
       m.Symmetrization.rhs_mean rel)
    true (rel < 0.25)

(* ------------------------------------------------------------ Embedding *)

let test_embedding_parameter_mapping () =
  (* c = 1/2 family: n' = (d'·n)^{2/3}. *)
  let n' = Embedding.source_size ~n:10_000 ~d':2.0 ~c:0.5 in
  checkb "formula" true (abs (n' - int_of_float (Float.round (Float.pow 20_000.0 (2.0 /. 3.0)))) <= 1)

let test_embedding_preserves_triangles () =
  let rng = Rng.create 23 in
  let e =
    Embedding.embed_at_degree rng ~n:2000 ~d':1.0 ~c:0.5 ~k:3
      ~make:(fun rng n' -> Gen.far_with_degree rng ~n:n' ~d:(sqrt (float_of_int n')) ~eps:0.1)
      ~split:(fun rng ~k g -> Partition.disjoint_random rng ~k g)
  in
  checkb "degree dropped to ~d'" true (e.Embedding.achieved_degree < 3.0);
  checkb "still has triangles" false (Triangle.is_free e.Embedding.graph);
  checkb "inputs union to graph" true
    (Graph.equal (Tfree_graph.Partition.union e.Embedding.inputs) e.Embedding.graph)

(* ------------------------------------------------------------- Budgeted *)

let gen_far_fixture part seed =
  let rng = Rng.create (1000 + seed) in
  let g = Gen.far_with_degree rng ~n:(3 * part) ~d:(sqrt (float_of_int (3 * part))) ~eps:0.1 in
  let parts = Partition.disjoint_random rng ~k:3 g in
  (parts, g)

let test_budgeted_success_monotone_in_budget () =
  let d = sqrt 600.0 in
  let small =
    Budgeted.success_rate ~trials:15 ~gen:(gen_far_fixture 200)
      ~protocol:(Budgeted.sim_high_budgeted ~budget_bits:64 ~d)
  in
  let large =
    Budgeted.success_rate ~trials:15 ~gen:(gen_far_fixture 200)
      ~protocol:(Budgeted.sim_high_budgeted ~budget_bits:40_000 ~d)
  in
  checkb (Printf.sprintf "small=%.2f large=%.2f" small large) true (large >= small);
  checkb "large budget succeeds" true (large >= 0.8);
  checkb "starved budget fails" true (small <= 0.4)

let test_budgeted_respects_budget () =
  let d = sqrt 600.0 in
  let parts, _ = gen_far_fixture 200 3 in
  let budget = 2000 in
  let o = Tfree_comm.Simultaneous.run ~seed:5 (Budgeted.sim_high_budgeted ~budget_bits:budget ~d) parts in
  Array.iter
    (fun bits -> checkb "within budget (+prefix)" true (bits <= budget + 64))
    o.Tfree_comm.Simultaneous.per_player_bits

let test_budgeted_threshold_found () =
  let d = sqrt 450.0 in
  let gen = gen_far_fixture 150 in
  match
    Budgeted.threshold_budget ~trials:10 ~gen
      ~protocol_of_budget:(fun b -> Budgeted.sim_high_budgeted ~budget_bits:b ~d)
      ~target:0.6 ~lo:32 ~hi:1_000_000
  with
  | Some (b, rate) ->
      checkb (Printf.sprintf "threshold %d bits rate %.2f" b rate) true (b > 32 && rate >= 0.6)
  | None -> Alcotest.fail "threshold not found below cap"

let test_budgeted_oneway_finds_with_big_budget () =
  let parts, g = gen_far_fixture 200 7 in
  let chain = Budgeted.oneway_budgeted ~budget_bits:200_000 in
  let o =
    Tfree_comm.Oneway.run_chain ~seed:3 chain
      ~alice_input:(Tfree_graph.Partition.player parts 0)
      ~bob_input:(Tfree_graph.Partition.player parts 1)
      ~charlie_input:(Tfree_graph.Partition.player parts 2)
  in
  match o.Tfree_comm.Oneway.result with
  | Some t -> checkb "real triangle" true (Triangle.is_triangle g t)
  | None -> () (* allowed: randomized *)


(* --------------------------------------------------------------- QCheck *)

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"BM dichotomy holds for random instances" ~count:25
      (pair (int_range 3 40) bool)
      (fun (n, target) ->
        let rng = Rng.create (n + if target then 1000 else 0) in
        let inst = Boolean_matching.generate rng ~n ~target in
        let g = Boolean_matching.reduction_graph inst in
        if target then Triangle.is_free g
        else Triangle.count g = n && List.length (Triangle.greedy_packing g) = n);
    Test.make ~name:"BM rows all equal the target" ~count:25 (pair (int_range 3 40) bool)
      (fun (n, target) ->
        let rng = Rng.create (n + if target then 2000 else 3000) in
        let inst = Boolean_matching.generate rng ~n ~target in
        List.for_all (fun j -> Boolean_matching.row_value inst j = target) (List.init n (fun j -> j)));
    Test.make ~name:"embed places inputs correctly" ~count:25 (int_range 4 12) (fun k ->
        let rng = Rng.create (10 * k) in
        let ((x1, x2, x3) as x) = Symmetrization.mu_sampler ~part:10 ~gamma:2.0 rng in
        let i, j = Symmetrization.draw_roles rng ~k in
        let inputs = Symmetrization.embed ~k ~i ~j x in
        Graph.equal inputs.(i) x1 && Graph.equal inputs.(j) x2 && Graph.equal inputs.(k - 1) x3);
    Test.make ~name:"mu samples are tripartite" ~count:20 (int_range 10 40) (fun part ->
        let rng = Rng.create part in
        let g = Mu_dist.sample rng ~part ~gamma:2.0 in
        Graph.fold_edges g ~init:true ~f:(fun acc u v -> acc && u / part <> v / part));
    (* -------- information-theory identities on random distributions
       (Tfree_proptest.Info_gen); tolerances absorb float summation. *)
    Test.make ~name:"entropy bounded: 0 <= H(p) <= log2 |support|" ~count:200
      (Tfree_proptest.Info_gen.arb_dist ())
      (fun p ->
        let h = Info.entropy p in
        h >= -1e-9 && h <= Info.log2 (float_of_int (Array.length p)) +. 1e-9);
    Test.make ~name:"Gibbs: D(mu||eta) >= 0, = 0 iff mu = eta" ~count:200
      (Tfree_proptest.Info_gen.arb_dist_pair ())
      (fun (mu, eta) ->
        let d = Info.kl_divergence mu eta in
        let l1 =
          Array.fold_left ( +. ) 0.0 (Array.mapi (fun i m -> Float.abs (m -. eta.(i))) mu)
        in
        (* Pinsker gives D >= l1^2 / (2 ln 2): strictly positive off the
           diagonal, not merely nonnegative *)
        d >= -1e-12
        && Info.kl_divergence mu mu < 1e-12
        && (l1 < 1e-6 || d > (l1 *. l1 /. (2.0 *. Float.log 2.0)) -. 1e-9));
    Test.make ~name:"chain rule: I(X;Y) = H(X) + H(Y) - H(X,Y)" ~count:200
      (Tfree_proptest.Info_gen.arb_joint ())
      (fun j ->
        Info.check_joint j;
        let hx = Info.entropy (Info.marginal_x j) in
        let hy = Info.entropy (Info.marginal_y j) in
        let hxy = Info.entropy (Array.concat (Array.to_list j)) in
        let i = Info.mutual_information j in
        Float.abs (i -. (hx +. hy -. hxy)) < 1e-9
        && Float.abs (Info.mutual_information_via_kl j -. i) < 1e-9
        && i >= -1e-9);
    Test.make ~name:"lemma 4.3: D(q||p) >= q - 2p for p < 1/2" ~count:500
      Tfree_proptest.Info_gen.arb_lemma43_params
      (fun (q, p) ->
        Info.binary_kl ~q ~p >= Info.lemma_4_3_bound ~q ~p -. 1e-12);
  ]

let () =
  Alcotest.run "tfree_lowerbound"
    [
      ( "info",
        [
          Alcotest.test_case "entropy" `Quick test_entropy_basics;
          Alcotest.test_case "kl nonnegative" `Quick test_kl_nonnegative_and_zero_iff_equal;
          Alcotest.test_case "kl infinite support" `Quick test_kl_infinite_on_support_mismatch;
          Alcotest.test_case "kl size mismatch" `Quick test_kl_size_mismatch;
          Alcotest.test_case "lemma 4.3 grid" `Quick test_lemma_4_3_grid;
          Alcotest.test_case "MI independent" `Quick test_mutual_information_independent;
          Alcotest.test_case "MI copy" `Quick test_mutual_information_identical;
          Alcotest.test_case "MI two forms" `Quick test_mutual_information_two_forms_agree;
          Alcotest.test_case "MI bounded" `Quick test_mutual_information_bounded_by_entropy;
          Alcotest.test_case "superadditivity" `Slow test_superadditivity_lemma_4_2;
          Alcotest.test_case "empirical joint" `Quick test_empirical_joint_normalized;
        ] );
      ( "mu",
        [
          Alcotest.test_case "tripartite split" `Quick test_mu_is_tripartite_split;
          Alcotest.test_case "lemma 4.5" `Slow test_mu_lemma_4_5;
          Alcotest.test_case "stats consistent" `Quick test_mu_stats_consistent;
          Alcotest.test_case "sample far" `Quick test_mu_sample_far;
        ] );
      ( "boolean-matching",
        [
          Alcotest.test_case "yes structure" `Quick test_bm_yes_instance_structure;
          Alcotest.test_case "no triangle-free" `Quick test_bm_no_instance_triangle_free;
          Alcotest.test_case "partition union" `Quick test_bm_partition_union;
          Alcotest.test_case "constant degree" `Quick test_bm_constant_degree;
          Alcotest.test_case "yes is far" `Quick test_bm_yes_is_far;
          Alcotest.test_case "protocols distinguish" `Slow test_bm_detectable_by_protocols;
        ] );
      ( "symmetrization",
        [
          Alcotest.test_case "embed shape" `Quick test_embed_shape;
          Alcotest.test_case "embed rejects bad roles" `Quick test_embed_rejects_bad_roles;
          Alcotest.test_case "cost identity" `Slow test_symmetrization_identity;
        ] );
      ( "embedding",
        [
          Alcotest.test_case "parameter mapping" `Quick test_embedding_parameter_mapping;
          Alcotest.test_case "preserves triangles" `Quick test_embedding_preserves_triangles;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_props);
      ( "budgeted",
        [
          Alcotest.test_case "monotone in budget" `Slow test_budgeted_success_monotone_in_budget;
          Alcotest.test_case "respects budget" `Quick test_budgeted_respects_budget;
          Alcotest.test_case "threshold found" `Slow test_budgeted_threshold_found;
          Alcotest.test_case "oneway big budget" `Quick test_budgeted_oneway_finds_with_big_budget;
        ] );
    ]
