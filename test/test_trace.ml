(* Tests for Tfree_trace: ambient span scoping, per-phase/per-player
   attribution, the size histogram, the decomposition identity, and the
   Chrome trace-event serialization round-trip. *)

open Tfree_comm
module Trace = Tfree_trace.Trace

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let params = Tfree.Params.practical

(* Drive a tap by hand: one delivery on [ch] of a [bits]-wide fixed-range
   int; returns the bit count actually recorded. *)
let deliver tap ~round ch bits =
  let m = Msg.int_in ~lo:0 ~hi:((1 lsl bits) - 1) 0 in
  ignore (tap.Channel.deliver ~round ch m);
  Msg.bits m

let test_span_attribution () =
  let c = Trace.create () in
  let tap = Trace.tap c in
  let b0 = deliver tap ~round:1 (Channel.To_player 0) 4 in
  let b1, b2 =
    Trace.span "outer" (fun () ->
        let b1 = deliver tap ~round:2 (Channel.From_player 1) 6 in
        let b2 = Trace.span "inner" (fun () -> deliver tap ~round:3 Channel.Board 8) in
        (b1, b2))
  in
  let evs = Trace.events c in
  checki "three events" 3 (List.length evs);
  let phases = List.map (fun e -> e.Trace.phase) evs in
  checkb "outside any span -> untraced" true (List.nth phases 0 = Trace.untraced);
  checkb "outer span" true (List.nth phases 1 = "outer");
  checkb "innermost span wins" true (List.nth phases 2 = "inner");
  checki "seq numbers are 0.." 0 (List.nth evs 0).Trace.seq;
  checki "rounds recorded" 3 (List.nth evs 2).Trace.round;
  checki "total bits" (b0 + b1 + b2) (Trace.total_bits c);
  checkb "decomposes against its own sum" true (Trace.decomposes c ~accounted:(b0 + b1 + b2));
  checkb "does not decompose against anything else" false
    (Trace.decomposes c ~accounted:(b0 + b1 + b2 + 1))

let test_span_exception_restores_stack () =
  let c = Trace.create () in
  let tap = Trace.tap c in
  (try Trace.span "doomed" (fun () -> failwith "boom") with Failure _ -> ());
  ignore (deliver tap ~round:1 Channel.Board 3);
  match Trace.events c with
  | [ e ] -> checkb "phase stack restored after raise" true (e.Trace.phase = Trace.untraced)
  | _ -> Alcotest.fail "expected exactly one event"

let test_phase_rows_order_and_totals () =
  let c = Trace.create () in
  let tap = Trace.tap c in
  let b_a1 = Trace.span "a" (fun () -> deliver tap ~round:1 (Channel.To_player 0) 5) in
  let b_b = Trace.span "b" (fun () -> deliver tap ~round:2 (Channel.To_player 1) 7) in
  let b_a2 = Trace.span "a" (fun () -> deliver tap ~round:3 (Channel.From_player 0) 9) in
  (match Trace.phase_rows c with
  | [ ("a", 2, bits_a); ("b", 1, bits_b) ] ->
      checki "phase a bits merge across re-entry" (b_a1 + b_a2) bits_a;
      checki "phase b bits" b_b bits_b
  | rows -> Alcotest.failf "unexpected phase rows (%d)" (List.length rows));
  let row_sum = List.fold_left (fun acc (_, _, b) -> acc + b) 0 (Trace.phase_rows c) in
  checki "phase rows sum to total" (Trace.total_bits c) row_sum

let test_player_rows () =
  let c = Trace.create () in
  let tap = Trace.tap c in
  let down = deliver tap ~round:1 (Channel.To_player 2) 4 in
  let up = deliver tap ~round:2 (Channel.From_player 2) 6 in
  let board = deliver tap ~round:3 Channel.Board 8 in
  (match Trace.player_rows c with
  | [ ("p2", d, u); ("board", bd, bu) ] ->
      checki "player download" down d;
      checki "player upload" up u;
      checki "board posting counts as download" board bd;
      checki "board has no upload" 0 bu
  | rows -> Alcotest.failf "unexpected player rows (%d)" (List.length rows))

let test_size_histogram () =
  let c = Trace.create () in
  let tap = Trace.tap c in
  (* Msg.bool = 1 bit -> bucket 0; 4-bit int_in -> bucket 2; tuple [] = 0
     bits -> bucket -1. *)
  ignore (tap.Channel.deliver ~round:1 Channel.Board (Msg.bool true));
  ignore (tap.Channel.deliver ~round:1 Channel.Board (Msg.bool false));
  ignore (tap.Channel.deliver ~round:1 Channel.Board (Msg.int_in ~lo:0 ~hi:15 9));
  ignore (tap.Channel.deliver ~round:1 Channel.Board (Msg.tuple []));
  let h = Trace.size_histogram c in
  checkb "zero-bit bucket" true (List.mem_assoc (-1) h);
  checki "two one-bit messages" 2 (List.assoc 0 h);
  checki "one four-bit message" 1 (List.assoc 2 h);
  checkb "buckets ascend" true (List.sort compare h = h);
  checki "histogram counts all messages" (Trace.message_count c)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 h)

let test_chrome_roundtrip () =
  let c = Trace.create () in
  let tap = Trace.tap c in
  Trace.with_collector c (fun () ->
      ignore
        (Trace.span "sample" (fun () -> deliver tap ~round:1 (Channel.To_player 0) 5));
      ignore (Trace.span "scan" (fun () -> deliver tap ~round:2 Channel.Board 7)));
  let doc = Trace.to_chrome ~other:[ ("accounted_bits", Tfree_util.Jsonout.Num (float_of_int (Trace.total_bits c))) ] c in
  (* Serialize and re-parse: the report path reads files, not live values. *)
  let reparsed =
    match Tfree_util.Jsonout.parse (Tfree_util.Jsonout.to_string doc) with
    | Ok v -> v
    | Error msg -> Alcotest.fail msg
  in
  checkb "phase rows survive the file format" true
    (Trace.phase_rows_of_chrome reparsed = Trace.phase_rows c);
  checkb "player rows survive the file format" true
    (Trace.player_rows_of_chrome reparsed = Trace.player_rows c);
  (match Trace.other_num_of_chrome "accounted_bits" reparsed with
  | Some a -> checki "otherData numeric round-trip" (Trace.total_bits c) a
  | None -> Alcotest.fail "accounted_bits missing from otherData");
  checkb "absent otherData field is None" true
    (Trace.other_num_of_chrome "nonexistent" reparsed = None);
  checki "two timed spans recorded" 2 (List.length (Trace.spans c))

let test_collectors_are_independent () =
  (* Two live collectors: each tap records only its own events, while span
     timing goes to whichever collector is registered. *)
  let c1 = Trace.create () and c2 = Trace.create () in
  let t1 = Trace.tap c1 and t2 = Trace.tap c2 in
  Trace.span "shared" (fun () ->
      ignore (deliver t1 ~round:1 Channel.Board 3);
      ignore (deliver t2 ~round:1 Channel.Board 5));
  checki "collector 1 saw one message" 1 (Trace.message_count c1);
  checki "collector 2 saw one message" 1 (Trace.message_count c2);
  checkb "both attribute to the ambient span" true
    (match (Trace.events c1, Trace.events c2) with
    | [ e1 ], [ e2 ] -> e1.Trace.phase = "shared" && e2.Trace.phase = "shared"
    | _ -> false)

let test_protocol_run_decomposes () =
  (* End-to-end on a real protocol: the tap's sum equals the ledger. *)
  let rng = Tfree_util.Rng.create 4242 in
  let g = Tfree_graph.Gen.far_with_degree rng ~n:220 ~d:5.0 ~eps:0.1 in
  let parts = Tfree_graph.Partition.with_duplication rng ~k:4 ~dup_p:0.3 g in
  let c = Trace.create () in
  let r =
    Trace.with_collector c (fun () ->
        Tfree.Tester.unrestricted ~tap:(Trace.tap c) ~seed:2 params parts)
  in
  checkb "protocol trace decomposes" true (Trace.decomposes c ~accounted:r.Tfree.Tester.bits);
  checkb "no event escaped the paper phases" true
    (List.for_all (fun (phase, _, _) -> phase <> Trace.untraced) (Trace.phase_rows c))

let () =
  Alcotest.run "tfree_trace"
    [
      ( "spans",
        [
          Alcotest.test_case "ambient attribution and nesting" `Quick test_span_attribution;
          Alcotest.test_case "exception restores the stack" `Quick test_span_exception_restores_stack;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "phase rows" `Quick test_phase_rows_order_and_totals;
          Alcotest.test_case "player rows" `Quick test_player_rows;
          Alcotest.test_case "size histogram" `Quick test_size_histogram;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "file-format round-trip" `Quick test_chrome_roundtrip;
        ] );
      ( "composition",
        [
          Alcotest.test_case "independent collectors" `Quick test_collectors_are_independent;
          Alcotest.test_case "real protocol decomposes" `Quick test_protocol_run_decomposes;
        ] );
    ]
