(* Tests for Tfree_obs: the bounded log-linear histogram (exactness of
   count/sum/min/max, merge-over-split identity, quantile agreement with
   Stats.quantile within the documented precision, O(buckets) memory, the
   compact and JSON codecs), the monotonic clock, the leveled JSONL
   logger, and the Prometheus exposition/validator pair. *)

open Tfree_util
module Histogram = Tfree_obs.Histogram
module Logger = Tfree_obs.Logger
module Mono = Tfree_obs.Mono
module Phase = Tfree_obs.Phase
module Prom = Tfree_obs.Prom
module Metrics = Tfree_wire.Metrics

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let hist_of samples =
  let h = Histogram.create () in
  List.iter (Histogram.record h) samples;
  h

(* ------------------------------------------------------------ histogram *)

let test_histogram_exact_scalars () =
  let samples = [ 0.0; 1.0; 3.5; 31.0; 32.0; 1000.25; 123456.0 ] in
  let h = hist_of samples in
  checki "count" (List.length samples) (Histogram.count h);
  checkb "sum is exact" true (Histogram.sum h = List.fold_left ( +. ) 0.0 samples);
  checkb "min is exact" true (Histogram.min_value h = 0.0);
  checkb "max is exact" true (Histogram.max_value h = 123456.0);
  checkb "mean" true
    (abs_float (Histogram.mean h -. (Histogram.sum h /. 7.0)) < 1e-9)

let test_histogram_rejects_garbage_samples () =
  let h = Histogram.create () in
  Histogram.record h (-50.0);
  Histogram.record h nan;
  (* both clamp to 0: counted, bucketed at zero, min/max stay finite *)
  checki "clamped samples still count" 2 (Histogram.count h);
  checkb "min clamps to 0" true (Histogram.min_value h = 0.0);
  checkb "max clamps to 0" true (Histogram.max_value h = 0.0);
  checkb "one bucket, the zero bucket" true (Histogram.buckets h = [ (0, 2) ])

let test_histogram_empty_and_single () =
  let h = Histogram.create () in
  checkb "empty quantile is nan" true (Float.is_nan (Histogram.quantile h 0.5));
  checkb "empty mean is nan" true (Float.is_nan (Histogram.mean h));
  checkb "empty min is nan" true (Float.is_nan (Histogram.min_value h));
  Histogram.record h 777.0;
  List.iter
    (fun q ->
      checkb
        (Printf.sprintf "single sample is its own q=%.2f" q)
        true
        (Histogram.quantile h q = 777.0))
    [ 0.0; 0.5; 1.0 ]

let test_histogram_extreme_quantiles_exact () =
  let h = hist_of [ 3.0; 900.0; 123456.0; 17.0 ] in
  checkb "q=0 is the exact min" true (Histogram.quantile h 0.0 = 3.0);
  checkb "q=1 is the exact max" true (Histogram.quantile h 1.0 = 123456.0);
  checkb "q clamps below 0" true (Histogram.quantile h (-3.0) = 3.0);
  checkb "q clamps above 1" true (Histogram.quantile h 9.0 = 123456.0)

let test_histogram_merge_split_identity () =
  let all = List.init 500 (fun i -> float_of_int (i * i mod 70000)) in
  let rec split i = function
    | [] -> ([], [], [])
    | x :: rest ->
        let a, b, c = split (i + 1) rest in
        if i mod 3 = 0 then (x :: a, b, c)
        else if i mod 3 = 1 then (a, x :: b, c)
        else (a, b, x :: c)
  in
  let a, b, c = split 0 all in
  let merged = hist_of a in
  Histogram.merge merged (hist_of b);
  Histogram.merge merged (hist_of c);
  checkb "merge over split = unsplit, exactly" true (Histogram.equal merged (hist_of all));
  checki "merged count" (List.length all) (Histogram.count merged);
  checkb "merged sum" true
    (abs_float (Histogram.sum merged -. Histogram.sum (hist_of all)) < 1e-6)

let test_histogram_merge_sub_bits_mismatch () =
  let a = Histogram.create ~sub_bits:5 () and b = Histogram.create ~sub_bits:6 () in
  checkb "merging mismatched sub_bits raises" true
    (match Histogram.merge a b with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_histogram_bounded_memory () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.record_int h (i * 37)
  done;
  let w0 = Obj.reachable_words (Obj.repr h) in
  for i = 1 to 100_000 do
    Histogram.record_int h (i * 91)
  done;
  let w1 = Obj.reachable_words (Obj.repr h) in
  checki "O(buckets): reachable words do not grow with samples" w0 w1;
  checki "count kept up" 101_000 (Histogram.count h)

let test_histogram_clear_and_copy () =
  let h = hist_of [ 5.0; 6.0; 7.0 ] in
  let snap = Histogram.copy h in
  Histogram.clear h;
  checki "cleared" 0 (Histogram.count h);
  checki "snapshot unaffected" 3 (Histogram.count snap);
  checkb "cleared histogram equals a fresh one" true (Histogram.equal h (Histogram.create ()))

let test_histogram_compact_round_trip () =
  let h = hist_of [ 0.0; 1.5; 42.0; 65536.0; 3.0e6 ] in
  match Histogram.of_compact (Histogram.to_compact h) with
  | Error msg -> Alcotest.failf "of_compact failed: %s" msg
  | Ok h' ->
      checkb "bucket-identical" true (Histogram.equal h h');
      checkb "sum survives (hex floats are exact)" true (Histogram.sum h' = Histogram.sum h);
      checkb "min survives" true (Histogram.min_value h' = Histogram.min_value h);
      checkb "max survives" true (Histogram.max_value h' = Histogram.max_value h)

let test_histogram_compact_rejects_garbage () =
  List.iter
    (fun s ->
      checkb (Printf.sprintf "of_compact rejects %S" s) true
        (match Histogram.of_compact s with Error _ -> true | Ok _ -> false))
    [ ""; "xyzzy"; "5:9"; "5:2:0x1p1:0x1p0:0x1p1:0.two" ]

let test_histogram_json_shape () =
  let h = hist_of [ 10.0; 20.0 ] in
  let j = Histogram.to_json h in
  checkb "count" true (Jsonout.member "count" j = Some (Jsonout.Num 2.0));
  checkb "sum" true (Jsonout.member "sum" j = Some (Jsonout.Num 30.0));
  checkb "buckets is a list" true
    (match Jsonout.member "buckets" j with Some (Jsonout.List _) -> true | _ -> false);
  let empty = Histogram.to_json (Histogram.create ()) in
  checkb "empty min is null" true (Jsonout.member "min" empty = Some Jsonout.Null)

(* QCheck: merge identity and quantile precision over arbitrary samples. *)
let qcheck_props =
  let open QCheck in
  let sample = Gen.oneof [ Gen.float_bound_exclusive 1e7; Gen.map float_of_int (Gen.int_bound 100) ] in
  let samples = make ~print:Print.(list float) Gen.(list_size (int_range 1 200) sample) in
  [
    Test.make ~name:"histogram: merge over any split equals unsplit" ~count:100
      (pair samples samples)
      (fun (xs, ys) ->
        let m = hist_of xs in
        Histogram.merge m (hist_of ys);
        Histogram.equal m (hist_of (xs @ ys)));
    Test.make ~name:"histogram: quantiles track Stats.quantile within max_error" ~count:100
      (pair samples (float_bound_inclusive 1.0))
      (fun (xs, q) ->
        let h = hist_of xs in
        let exact = Stats.quantile q xs in
        abs_float (Histogram.quantile h q -. exact) <= Histogram.max_error h exact);
    Test.make ~name:"histogram: compact codec round-trips" ~count:100 samples (fun xs ->
        let h = hist_of xs in
        match Histogram.of_compact (Histogram.to_compact h) with
        | Ok h' -> Histogram.equal h h' && Histogram.sum h' = Histogram.sum h
        | Error _ -> false);
  ]

(* ----------------------------------------------------------------- mono *)

let test_mono_never_decreases () =
  let prev = ref (Mono.now_s ()) in
  for _ = 1 to 10_000 do
    let now = Mono.now_s () in
    if now < !prev then Alcotest.fail "Mono.now_s went backwards";
    prev := now
  done;
  checkb "now_us is now_s scaled" true (Mono.now_us () >= !prev *. 1e6)

(* ---------------------------------------------------------------- phase *)

let test_phase_round_trip () =
  checki "six phases" 6 Phase.count;
  List.iter
    (fun p ->
      checkb (Phase.name p ^ " name round-trips") true (Phase.of_name (Phase.name p) = Some p);
      checkb (Phase.name p ^ " index round-trips") true (Phase.of_index (Phase.index p) = p))
    Phase.all;
  checkb "unknown phase name" true (Phase.of_name "teleport" = None);
  checkb "out-of-range index raises" true
    (match Phase.of_index Phase.count with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --------------------------------------------------------------- logger *)

let with_temp_log f =
  let path = Filename.temp_file "tfree_obs_test" ".log" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_logger_levels_and_jsonl () =
  with_temp_log (fun path ->
      let l = Logger.create ~level:Logger.Info ~path () in
      checkb "debug disabled at info" true (not (Logger.enabled l Logger.Debug));
      checkb "warn enabled at info" true (Logger.enabled l Logger.Warn);
      Logger.log l Logger.Debug "invisible" [];
      Logger.log l Logger.Info "hello" [ ("n", Jsonout.Num 7.0) ];
      Logger.log l Logger.Error "boom" [ ("detail", Jsonout.Str "why") ];
      Logger.close l;
      checki "debug filtered, two emitted" 2 (Logger.emitted l);
      let lines =
        In_channel.with_open_text path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun s -> s <> "")
      in
      checki "two JSONL lines on disk" 2 (List.length lines);
      List.iter
        (fun line ->
          match Jsonout.parse line with
          | Error msg -> Alcotest.failf "log line does not parse: %s" msg
          | Ok j ->
              checkb "ts present" true
                (match Jsonout.member "ts" j with Some (Jsonout.Num _) -> true | _ -> false);
              checkb "level present" true
                (match Jsonout.member "level" j with Some (Jsonout.Str _) -> true | _ -> false);
              checkb "event present" true
                (match Jsonout.member "event" j with Some (Jsonout.Str _) -> true | _ -> false))
        lines;
      (match Jsonout.parse (List.nth lines 0) with
      | Ok j ->
          checkb "custom field serialized" true (Jsonout.member "n" j = Some (Jsonout.Num 7.0))
      | Error _ -> Alcotest.fail "unreachable"))

let test_logger_ring_is_bounded () =
  with_temp_log (fun path ->
      let l = Logger.create ~ring:3 ~level:Logger.Debug ~path () in
      for i = 1 to 10 do
        Logger.log l Logger.Info (Printf.sprintf "e%d" i) []
      done;
      let tail = Logger.recent l in
      Logger.close l;
      checki "ring holds its bound" 3 (List.length tail);
      checkb "ring keeps the newest, oldest first" true
        (List.for_all2
           (fun line e ->
             match Jsonout.parse line with
             | Ok j -> Jsonout.member "event" j = Some (Jsonout.Str e)
             | Error _ -> false)
           tail [ "e8"; "e9"; "e10" ]);
      checki "emitted counts the lifetime, not the ring" 10 (Logger.emitted l))

let test_logger_level_names () =
  List.iter
    (fun l ->
      checkb (Logger.level_name l ^ " round-trips") true
        (Logger.level_of_name (Logger.level_name l) = Some l))
    [ Logger.Debug; Logger.Info; Logger.Warn; Logger.Error ];
  checkb "unknown level name" true (Logger.level_of_name "loud" = None)

(* ----------------------------------------------------------------- prom *)

let populated_stats () =
  let m = Metrics.create () in
  Metrics.record_query ~version:2 m ~protocol:"exact" ~found_triangle:true ~wire_bytes:100
    ~accounted_bits:640 ~latency_us:1234.0;
  Metrics.record_query m ~protocol:"oblivious" ~found_triangle:false ~wire_bytes:90
    ~accounted_bits:512 ~latency_us:432.0;
  Metrics.record_error m ~category:Metrics.Malformed;
  List.iter (fun p -> Metrics.record_phase m ~phase:p ~us:10.0) Phase.all;
  Metrics.to_json m

let test_prom_of_stats_validates () =
  let text = Prom.of_stats (populated_stats ()) in
  (match Prom.validate text with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "of_stats output rejected: %s" msg);
  let contains sub =
    let n = String.length sub and hay = String.length text in
    let rec go i = i + n <= hay && (String.sub text i n = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun family ->
      checkb (family ^ " present") true (contains family))
    [
      "tfree_queries_served_total";
      "tfree_errors_total";
      "tfree_latency_us{quantile=";
      "tfree_latency_us_count";
      "tfree_phase_latency_us{phase=\"run\"";
    ]

let test_prom_validate_rejects_garbage () =
  List.iter
    (fun (label, text) ->
      checkb (label ^ " rejected") true
        (match Prom.validate text with Error _ -> true | Ok () -> false))
    [
      ("empty exposition", "");
      ("sample without TYPE", "tfree_thing 1\n");
      ("malformed sample line", "# TYPE tfree_thing counter\ntfree_thing one\n");
      ("malformed comment", "# TIPE tfree_thing counter\ntfree_thing 1\n");
      ("unterminated label", "# TYPE t counter\nt{a=\"b 1\n");
    ]

(* ------------------------------------------------------- metrics bridge *)

let test_metrics_negative_latency_rejected () =
  let m = Metrics.create () in
  Metrics.record_query m ~protocol:"exact" ~found_triangle:false ~wire_bytes:10 ~accounted_bits:64
    ~latency_us:(-5.0);
  Metrics.record_query m ~protocol:"exact" ~found_triangle:false ~wire_bytes:10 ~accounted_bits:64
    ~latency_us:nan;
  Metrics.record_query m ~protocol:"exact" ~found_triangle:false ~wire_bytes:10 ~accounted_bits:64
    ~latency_us:250.0;
  checki "all three queries count" 3 (Metrics.queries_served m);
  let lat = Metrics.latency_snapshot m in
  checki "only the valid latency sample lands" 1 (Histogram.count lat);
  checkb "and it is the sample" true (Histogram.min_value lat = 250.0)

let test_metrics_merge_folds_histograms () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.record_query a ~protocol:"exact" ~found_triangle:false ~wire_bytes:10 ~accounted_bits:64
    ~latency_us:100.0;
  Metrics.record_query b ~protocol:"exact" ~found_triangle:true ~wire_bytes:20 ~accounted_bits:64
    ~latency_us:900.0;
  Metrics.record_phase a ~phase:Phase.Run ~us:5.0;
  Metrics.record_phase b ~phase:Phase.Run ~us:7.0;
  Metrics.merge a b;
  checki "served folds" 2 (Metrics.queries_served a);
  let lat = Metrics.latency_snapshot a in
  checki "latency histogram folds" 2 (Histogram.count lat);
  checkb "across the full range" true
    (Histogram.min_value lat = 100.0 && Histogram.max_value lat = 900.0);
  checki "phase histograms fold too" 2 (Metrics.phase_count a Phase.Run);
  checkb "merge is exact" true
    (let expect = Histogram.create () in
     Histogram.record expect 100.0;
     Histogram.record expect 900.0;
     Histogram.equal lat expect)

let test_metrics_health_json_is_scalar () =
  let m = Metrics.create () in
  Metrics.record_query m ~protocol:"exact" ~found_triangle:false ~wire_bytes:10 ~accounted_bits:64
    ~latency_us:100.0;
  let h = Metrics.health_json m in
  List.iter
    (fun k ->
      checkb (k ^ " present and numeric") true
        (match Jsonout.member k h with Some (Jsonout.Num _) -> true | _ -> false))
    [ "uptime_s"; "queries_served"; "errors"; "in_flight"; "accepted"; "shed" ];
  checkb "no verdict table in the health payload" true (Jsonout.member "verdicts" h = None);
  checkb "no histograms in the health payload" true (Jsonout.member "latency_us" h = None)

(* ------------------------------------------------------------------ run *)

let () =
  Alcotest.run "tfree_obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "exact scalars" `Quick test_histogram_exact_scalars;
          Alcotest.test_case "negative/nan samples clamp" `Quick
            test_histogram_rejects_garbage_samples;
          Alcotest.test_case "empty and single" `Quick test_histogram_empty_and_single;
          Alcotest.test_case "extreme quantiles exact" `Quick
            test_histogram_extreme_quantiles_exact;
          Alcotest.test_case "merge over split = unsplit" `Quick
            test_histogram_merge_split_identity;
          Alcotest.test_case "merge sub_bits mismatch" `Quick
            test_histogram_merge_sub_bits_mismatch;
          Alcotest.test_case "O(buckets) memory" `Quick test_histogram_bounded_memory;
          Alcotest.test_case "clear and copy" `Quick test_histogram_clear_and_copy;
          Alcotest.test_case "compact codec round-trip" `Quick
            test_histogram_compact_round_trip;
          Alcotest.test_case "compact codec rejects garbage" `Quick
            test_histogram_compact_rejects_garbage;
          Alcotest.test_case "json shape" `Quick test_histogram_json_shape;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_props);
      ( "mono",
        [ Alcotest.test_case "never decreases" `Quick test_mono_never_decreases ] );
      ("phase", [ Alcotest.test_case "round-trips" `Quick test_phase_round_trip ]);
      ( "logger",
        [
          Alcotest.test_case "levels and JSONL shape" `Quick test_logger_levels_and_jsonl;
          Alcotest.test_case "ring is bounded" `Quick test_logger_ring_is_bounded;
          Alcotest.test_case "level names" `Quick test_logger_level_names;
        ] );
      ( "prom",
        [
          Alcotest.test_case "of_stats validates" `Quick test_prom_of_stats_validates;
          Alcotest.test_case "validator rejects garbage" `Quick
            test_prom_validate_rejects_garbage;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "negative latency rejected" `Quick
            test_metrics_negative_latency_rejected;
          Alcotest.test_case "merge folds histograms" `Quick
            test_metrics_merge_folds_histograms;
          Alcotest.test_case "health payload is scalar" `Quick
            test_metrics_health_json_is_scalar;
        ] );
    ]
