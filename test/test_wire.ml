(* Tests for Tfree_wire: bit I/O, the self-delimiting codec, framing,
   transports, the wire runtime's parity with the cost-model runtime, and
   the tfree-serve request/response protocol. *)

open Tfree_util
open Tfree_graph
open Tfree_comm
module Bitio = Tfree_wire.Bitio
module Codec = Tfree_wire.Codec
module Frame = Tfree_wire.Frame
module Transport = Tfree_wire.Transport
module Wire = Tfree_wire.Wire_runtime
module Service = Tfree_wire.Service

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let params = Tfree.Params.practical

(* ---------------------------------------------------------------- bitio *)

let test_bitio_roundtrip () =
  let w = Bitio.writer () in
  Bitio.put_bit w true;
  Bitio.put_bits w ~width:7 0x5a;
  Bitio.put_bits w ~width:0 0;
  Bitio.put_gamma w 0;
  Bitio.put_gamma w 41;
  Bitio.put_bits w ~width:13 4095;
  let total = Bitio.bits_written w in
  checki "bits written" (1 + 7 + 0 + Bits.elias_gamma 0 + Bits.elias_gamma 41 + 13) total;
  let r = Bitio.reader (Bitio.to_bytes w) in
  checkb "bit" true (Bitio.get_bit r);
  checki "bits" 0x5a (Bitio.get_bits r ~width:7);
  checki "zero width" 0 (Bitio.get_bits r ~width:0);
  checki "gamma 0" 0 (Bitio.get_gamma r);
  checki "gamma 41" 41 (Bitio.get_gamma r);
  checki "wide" 4095 (Bitio.get_bits r ~width:13);
  checki "all consumed" total (Bitio.bits_read r)

let test_bitio_range_checks () =
  let w = Bitio.writer () in
  Alcotest.check_raises "overflow" (Invalid_argument "Bitio.put_bits: value does not fit width")
    (fun () -> Bitio.put_bits w ~width:3 8);
  let r = Bitio.reader (Bytes.create 1) ~len:0 in
  Alcotest.check_raises "past end" (Invalid_argument "Bitio.get_bit: past end of stream") (fun () ->
      ignore (Bitio.get_bit r))

(* ---------------------------------------------------------------- codec *)

(* One message per Msg.value constructor (plus a nested tuple). *)
let sample_msgs =
  [
    Msg.empty;
    Msg.bool true;
    Msg.bool false;
    Msg.int_in ~lo:(-1) ~hi:62 (-1);
    Msg.int_in ~lo:7 ~hi:7 7;
    Msg.nat 0;
    Msg.nat 1_000_000;
    Msg.vertex ~n:2 1;
    Msg.vertex_opt ~n:1000 None;
    Msg.vertex_opt ~n:1000 (Some 999);
    Msg.edge ~n:50 (3, 49);
    Msg.vertices ~n:300 [];
    Msg.vertices ~n:300 [ 0; 299; 150 ];
    Msg.edges ~n:300 [];
    Msg.edges ~n:300 [ (0, 299); (12, 13) ];
    Msg.tuple [];
    Msg.tuple
      [ Msg.nat 5; Msg.edges ~n:40 [ (1, 2) ]; Msg.tuple [ Msg.bool true; Msg.vertex ~n:9 8 ] ];
  ]

let roundtrip msg =
  let payload, bits = Codec.encode_payload msg in
  checki "payload length = Msg.bits" (Msg.bits msg) bits;
  checki "payload bytes = ceil(bits/8)" ((bits + 7) / 8) (Bytes.length payload);
  let back = Codec.decode_payload (Msg.layout msg) ~bits payload in
  checkb "value round-trips" true (Msg.value back = Msg.value msg);
  checki "bits round-trip" (Msg.bits msg) (Msg.bits back);
  checkb "layout round-trips" true (Msg.layout back = Msg.layout msg)

let test_codec_every_constructor () = List.iter roundtrip sample_msgs

let test_layout_descriptor_roundtrip () =
  List.iter
    (fun msg ->
      let d = Codec.layout_to_bytes (Msg.layout msg) in
      let pos = ref 0 in
      let back = Codec.get_layout d pos in
      checkb "layout descriptor round-trips" true (back = Msg.layout msg);
      checki "descriptor fully consumed" (Bytes.length d) !pos)
    sample_msgs

(* ---------------------------------------------------------------- frame *)

let test_frame_buffer_roundtrip () =
  List.iter
    (fun msg ->
      let frame = Frame.encode msg in
      let pos = ref 0 in
      let back = Frame.decode frame pos in
      checki "frame fully consumed" (Bytes.length frame) !pos;
      checkb "frame round-trips" true (Msg.value back = Msg.value msg && Msg.bits back = Msg.bits msg);
      checkb "overhead positive" true
        (Frame.overhead_bits ~frame_bytes:(Bytes.length frame) ~payload_bits:(Msg.bits msg) > 0))
    sample_msgs

let stream_roundtrip tr =
  let sent = List.map (fun msg -> (msg, Frame.write tr msg)) sample_msgs in
  List.iter
    (fun (msg, wrote) ->
      let back, read = Frame.read tr in
      checki "read size = written size" wrote read;
      checkb "stream round-trips" true (Msg.value back = Msg.value msg && Msg.bits back = Msg.bits msg))
    sent

let test_frame_over_pipe () = stream_roundtrip (Transport.pipe ())

let test_frame_over_socketpair () =
  let tr = Transport.socketpair () in
  stream_roundtrip tr;
  Transport.close tr

let test_exchange_large_frame_socketpair () =
  (* a frame far bigger than a kernel socket buffer must not deadlock the
     single-process loopback exchange *)
  let tr = Transport.socketpair () in
  let es = List.init 200_000 (fun i -> (i mod 4096, (i * 7) mod 4096)) in
  let msg = Msg.edges ~n:4096 es in
  let back, bytes = Frame.exchange tr msg in
  checkb "big frame round-trips" true (Msg.value back = Msg.value msg);
  checkb "frame really big" true (bytes > 256 * 1024);
  Transport.close tr

(* --------------------------------------------------- wire-runtime parity *)

type proto_run = ?tap:Channel.tap -> seed:int -> Partition.t -> Tfree.Tester.report

let protocols ~davg : (string * proto_run) list =
  [
    ("unrestricted", fun ?tap ~seed parts -> Tfree.Tester.unrestricted ?tap ~seed params parts);
    ("sim", fun ?tap ~seed parts -> Tfree.Tester.simultaneous ?tap ~seed params ~d:davg parts);
    ("oblivious", fun ?tap ~seed parts -> Tfree.Tester.simultaneous_oblivious ?tap ~seed params parts);
    ("exact", fun ?tap ~seed parts -> Tfree.Tester.exact ?tap ~seed parts);
  ]

(* The acceptance identity, per protocol and transport: same verdict, same
   accounted bits, and wire_bytes*8 - framing_overhead_bits = accounted_bits
   exactly. *)
let parity_suite transport () =
  let k = 4 in
  List.iter
    (fun seed ->
      let rng = Rng.create (7_321 * seed) in
      let g = Gen.far_with_degree rng ~n:260 ~d:5.0 ~eps:0.1 in
      let parts = Partition.with_duplication rng ~k ~dup_p:0.3 g in
      let davg = Graph.avg_degree g in
      List.iter
        (fun (name, (run : proto_run)) ->
          let model = run ~seed parts in
          let net = Wire.create ~transport ~k () in
          let wired = run ~tap:(Wire.tap net) ~seed parts in
          let r = Wire.report net ~accounted_bits:wired.Tfree.Tester.bits in
          Wire.close net;
          checkb (name ^ " verdict parity") true
            (model.Tfree.Tester.verdict = wired.Tfree.Tester.verdict);
          checki (name ^ " accounted bits parity") model.Tfree.Tester.bits wired.Tfree.Tester.bits;
          checki
            (name ^ " reconciliation identity")
            r.Wire.accounted_bits
            ((8 * r.Wire.wire_bytes) - r.Wire.framing_overhead_bits);
          checkb (name ^ " reconciles") true (Wire.reconciles r);
          checkb (name ^ " frames flowed") true (r.Wire.frames > 0))
        (protocols ~davg))
    [ 1; 2; 3 ]

let test_parity_blackboard () =
  let k = 4 in
  let seed = 5 in
  let rng = Rng.create 31_337 in
  let g = Gen.far_with_degree rng ~n:200 ~d:5.0 ~eps:0.1 in
  let parts = Partition.with_duplication rng ~k ~dup_p:0.3 g in
  let model = Tfree.Tester.unrestricted ~mode:Runtime.Blackboard ~seed params parts in
  let net = Wire.create ~k () in
  let wired =
    Tfree.Tester.unrestricted ~mode:Runtime.Blackboard ~tap:(Wire.tap net) ~seed params parts
  in
  let r = Wire.report net ~accounted_bits:wired.Tfree.Tester.bits in
  Wire.close net;
  checkb "blackboard verdict parity" true (model.Tfree.Tester.verdict = wired.Tfree.Tester.verdict);
  checki "blackboard bits parity" model.Tfree.Tester.bits wired.Tfree.Tester.bits;
  checkb "blackboard reconciles" true (Wire.reconciles r)

let test_wire_runtime_surface () =
  (* drive the Runtime-shaped surface directly and reconcile its own ledger *)
  let rng = Rng.create 99 in
  let g = Gen.far_with_degree rng ~n:100 ~d:4.0 ~eps:0.1 in
  let parts = Partition.disjoint_random rng ~k:3 g in
  let wt = Wire.make ~seed:7 parts in
  let n = Wire.n wt in
  let replies =
    Wire.ask_all wt ~req:(Msg.nat 3) (fun _ gj -> Msg.edges ~n (Graph.edges gj))
  in
  checki "one reply per player" (Wire.k wt) (Array.length replies);
  Wire.tell_all wt (Msg.bool true);
  let echoed = Wire.query wt 1 ~req:(Msg.vertex ~n 0) (fun _ -> Msg.nat 42) in
  checki "query reply decoded" 42 (Msg.get_int echoed);
  checkb "someone owns an edge" true (Wire.any_player wt (fun gj -> Graph.m gj > 0));
  let r = Wire.reconcile wt in
  Wire.close_runtime wt;
  checki "surface accounted = cost ledger" (Cost.total (Wire.cost wt)) r.Wire.accounted_bits;
  checkb "surface reconciles" true (Wire.reconciles r)

(* ------------------------------------------------------- tap composition *)

module Trace = Tfree_trace.Trace

(* The full acceptance matrix: identity ∘ trace ∘ wire installed together,
   on every protocol × {coordinator, blackboard} × {model, pipe,
   socketpair}.  Composition must change no verdict and no accounted bit
   count, the wire leg must still reconcile, and the trace leg must satisfy
   the decomposition identity. *)
let composition_suite mode transport () =
  let k = 4 and seed = 2 in
  let rng = Rng.create 52_901 in
  let g = Gen.far_with_degree rng ~n:240 ~d:5.0 ~eps:0.1 in
  let parts = Partition.with_duplication rng ~k ~dup_p:0.3 g in
  let davg = Graph.avg_degree g in
  let run_with (run : proto_run) ?tap () =
    match mode with
    | Runtime.Coordinator -> run ?tap ~seed parts
    | Runtime.Blackboard ->
        (* only the adaptive protocol distinguishes the modes; the
           simultaneous ones go through their own referee *)
        Tfree.Tester.unrestricted ~mode ?tap ~seed params parts
  in
  List.iter
    (fun (name, run) ->
      let model = run_with run () in
      let collector = Trace.create () in
      let net = Option.map (fun tr -> Wire.create ~transport:tr ~k ()) transport in
      let tap =
        Channel.compose_all
          (Channel.identity
          :: Trace.tap collector
          :: Option.to_list (Option.map Wire.tap net))
      in
      let traced = Trace.with_collector collector (fun () -> run_with run ~tap ()) in
      checkb (name ^ " verdict unchanged by composition") true
        (model.Tfree.Tester.verdict = traced.Tfree.Tester.verdict);
      checki (name ^ " accounted bits unchanged") model.Tfree.Tester.bits traced.Tfree.Tester.bits;
      checkb (name ^ " decomposition identity") true
        (Trace.decomposes collector ~accounted:traced.Tfree.Tester.bits);
      Option.iter
        (fun net ->
          let r = Wire.report net ~accounted_bits:traced.Tfree.Tester.bits in
          Wire.close net;
          checkb (name ^ " wire reconciles under composition") true (Wire.reconciles r);
          checki (name ^ " one frame per traced event") (Trace.message_count collector)
            r.Wire.frames)
        net)
    (protocols ~davg)

(* -------------------------------------------------------------- service *)

let test_service_request_json_roundtrip () =
  let req =
    {
      Service.family = Service.Behrend;
      partition = Service.Skewed;
      protocol = Service.Unrestricted;
      n = 123;
      d = 3.5;
      k = 6;
      eps = 0.2;
      seed = 11;
      transport = Wire.Socketpair;
    }
  in
  match Service.request_of_json (Service.request_to_json req) with
  | Ok back -> checkb "request round-trips" true (back = req)
  | Error msg -> Alcotest.fail msg

let test_service_request_defaults () =
  match Service.request_of_json (Jsonout.Obj [ ("protocol", Jsonout.Str "exact") ]) with
  | Ok req ->
      checkb "defaults filled" true
        (req = { Service.default_request with protocol = Service.Exact })
  | Error msg -> Alcotest.fail msg

let test_service_request_rejects_unknown () =
  match Service.request_of_json (Jsonout.Obj [ ("protocol", Jsonout.Str "quantum") ]) with
  | Ok _ -> Alcotest.fail "accepted an unknown protocol"
  | Error _ -> ()

let test_service_run_request_reconciles () =
  List.iter
    (fun protocol ->
      let resp =
        Service.run_request { Service.default_request with protocol; n = 150; seed = 3 }
      in
      checkb
        (Service.protocol_to_string protocol ^ " response reconciles")
        true
        (Wire.reconciles resp.Service.wire);
      match Service.response_of_json (Service.response_to_json resp) with
      | Ok back -> checkb "response JSON round-trips" true (back = resp)
      | Error msg -> Alcotest.fail msg)
    [ Service.Unrestricted; Service.Sim; Service.Oblivious; Service.Exact ]

(* A malformed line must get a structured {"ok":false,"error":...} reply on
   the same connection, which must then serve a normal query; the stats
   telemetry must count the error.  Runs a real forked server on a temp
   socket. *)
let test_service_malformed_line_keeps_connection () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tfree-test-wire-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  match Unix.fork () with
  | 0 ->
      (* child: exactly one successful protocol query in the session *)
      exit (if Service.serve ~path () = 1 then 0 else 1)
  | server ->
      let rec await tries =
        if not (Sys.file_exists path) then
          if tries = 0 then Alcotest.fail "server socket never appeared"
          else (
            Unix.sleepf 0.05;
            await (tries - 1))
      in
      await 100;
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect sock (Unix.ADDR_UNIX path);
      let out = Unix.out_channel_of_descr sock and inp = Unix.in_channel_of_descr sock in
      let exchange line =
        output_string out (line ^ "\n");
        flush out;
        match In_channel.input_line inp with
        | Some reply -> reply
        | None -> Alcotest.fail "server closed the connection"
      in
      (match Jsonout.parse (exchange "{definitely not json") with
      | Ok j -> (
          match (Jsonout.member "ok" j, Jsonout.member "error" j) with
          | Some (Jsonout.Bool false), Some (Jsonout.Str _) -> ()
          | _ -> Alcotest.fail "malformed line did not get a structured error")
      | Error msg -> Alcotest.failf "error reply is not JSON: %s" msg);
      (* same connection, normal query *)
      let req = { Service.default_request with protocol = Service.Exact; n = 60 } in
      (match
         Result.bind
           (Jsonout.parse (exchange (Jsonout.to_line (Service.request_to_json req))))
           Service.response_of_json
       with
      | Ok resp -> checkb "query after malformed line reconciles" true (Wire.reconciles resp.Service.wire)
      | Error msg -> Alcotest.failf "connection unusable after malformed line: %s" msg);
      Unix.close sock;
      (match Service.client_stats ~path with
      | Ok stats ->
          let num k =
            match Option.bind (Jsonout.member k stats) Jsonout.to_float with
            | Some f -> int_of_float f
            | None -> Alcotest.failf "stats missing %S" k
          in
          checki "stats counted the error" 1 (num "errors");
          checki "stats counted the query" 1 (num "queries_served")
      | Error msg -> Alcotest.failf "stats query failed: %s" msg);
      Service.client_shutdown ~path;
      (match Unix.waitpid [] server with
      | _, Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "server did not exit cleanly")

(* --------------------------------------------------------------- QCheck *)

let qcheck_props =
  let open QCheck in
  let arb = Tfree_proptest.Msg_gen.arbitrary in
  [
    Test.make ~name:"codec round-trip on random messages" ~count:500 arb (fun msg ->
        let payload, bits = Codec.encode_payload msg in
        let back = Codec.decode_payload (Msg.layout msg) ~bits payload in
        Msg.value back = Msg.value msg && Msg.bits back = Msg.bits msg);
    Test.make ~name:"encoded payload length = Msg.bits" ~count:500 arb (fun msg ->
        let payload, bits = Codec.encode_payload msg in
        bits = Msg.bits msg && Bytes.length payload = (bits + 7) / 8);
    Test.make ~name:"frame round-trip and overhead accounting" ~count:200 arb (fun msg ->
        let frame = Frame.encode msg in
        let pos = ref 0 in
        let back = Frame.decode frame pos in
        Msg.value back = Msg.value msg
        && !pos = Bytes.length frame
        && Frame.overhead_bits ~frame_bytes:(Bytes.length frame) ~payload_bits:(Msg.bits msg) > 0);
  ]

let () =
  Alcotest.run "tfree_wire"
    [
      ( "bitio",
        [
          Alcotest.test_case "round-trip" `Quick test_bitio_roundtrip;
          Alcotest.test_case "range checks" `Quick test_bitio_range_checks;
        ] );
      ( "codec",
        [
          Alcotest.test_case "every constructor" `Quick test_codec_every_constructor;
          Alcotest.test_case "layout descriptor" `Quick test_layout_descriptor_roundtrip;
        ] );
      ( "frame",
        [
          Alcotest.test_case "buffer round-trip" `Quick test_frame_buffer_roundtrip;
          Alcotest.test_case "over pipe" `Quick test_frame_over_pipe;
          Alcotest.test_case "over socketpair" `Quick test_frame_over_socketpair;
          Alcotest.test_case "large frame no deadlock" `Quick test_exchange_large_frame_socketpair;
        ] );
      ( "parity",
        [
          Alcotest.test_case "pipe transport" `Quick (parity_suite Wire.Pipe);
          Alcotest.test_case "socketpair transport" `Quick (parity_suite Wire.Socketpair);
          Alcotest.test_case "blackboard mode" `Quick test_parity_blackboard;
          Alcotest.test_case "runtime surface" `Quick test_wire_runtime_surface;
        ] );
      ( "composition",
        [
          Alcotest.test_case "coordinator, model" `Quick (composition_suite Runtime.Coordinator None);
          Alcotest.test_case "coordinator, pipe" `Quick
            (composition_suite Runtime.Coordinator (Some Wire.Pipe));
          Alcotest.test_case "coordinator, socketpair" `Quick
            (composition_suite Runtime.Coordinator (Some Wire.Socketpair));
          Alcotest.test_case "blackboard, model" `Quick (composition_suite Runtime.Blackboard None);
          Alcotest.test_case "blackboard, pipe" `Quick
            (composition_suite Runtime.Blackboard (Some Wire.Pipe));
          Alcotest.test_case "blackboard, socketpair" `Quick
            (composition_suite Runtime.Blackboard (Some Wire.Socketpair));
        ] );
      ( "service",
        [
          Alcotest.test_case "request JSON round-trip" `Quick test_service_request_json_roundtrip;
          Alcotest.test_case "request defaults" `Quick test_service_request_defaults;
          Alcotest.test_case "rejects unknown enum" `Quick test_service_request_rejects_unknown;
          Alcotest.test_case "run_request reconciles" `Quick test_service_run_request_reconciles;
          Alcotest.test_case "malformed line keeps connection" `Quick
            test_service_malformed_line_keeps_connection;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
