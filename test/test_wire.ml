(* Tests for Tfree_wire: bit I/O, the self-delimiting codec, framing and
   its fail-closed hardening, transports, fault injection and the chaos
   matrix, the wire runtime's parity with the cost-model runtime, the
   tfree-serve request/response protocol and its resilience to misbehaving
   clients. *)

open Tfree_util
open Tfree_graph
open Tfree_comm
module Bitio = Tfree_wire.Bitio
module Codec = Tfree_wire.Codec
module Frame = Tfree_wire.Frame
module Transport = Tfree_wire.Transport
module Wire = Tfree_wire.Wire_runtime
module Service = Tfree_wire.Service
module Fault = Tfree_wire.Fault
module Wire_error = Tfree_wire.Wire_error
module Metrics = Tfree_wire.Metrics
module Proto = Tfree_wire.Proto

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let params = Tfree.Params.practical

(* ---------------------------------------------------------------- bitio *)

let test_bitio_roundtrip () =
  let w = Bitio.writer () in
  Bitio.put_bit w true;
  Bitio.put_bits w ~width:7 0x5a;
  Bitio.put_bits w ~width:0 0;
  Bitio.put_gamma w 0;
  Bitio.put_gamma w 41;
  Bitio.put_bits w ~width:13 4095;
  let total = Bitio.bits_written w in
  checki "bits written" (1 + 7 + 0 + Bits.elias_gamma 0 + Bits.elias_gamma 41 + 13) total;
  let r = Bitio.reader (Bitio.to_bytes w) in
  checkb "bit" true (Bitio.get_bit r);
  checki "bits" 0x5a (Bitio.get_bits r ~width:7);
  checki "zero width" 0 (Bitio.get_bits r ~width:0);
  checki "gamma 0" 0 (Bitio.get_gamma r);
  checki "gamma 41" 41 (Bitio.get_gamma r);
  checki "wide" 4095 (Bitio.get_bits r ~width:13);
  checki "all consumed" total (Bitio.bits_read r)

let test_bitio_range_checks () =
  let w = Bitio.writer () in
  Alcotest.check_raises "overflow" (Invalid_argument "Bitio.put_bits: value does not fit width")
    (fun () -> Bitio.put_bits w ~width:3 8);
  let r = Bitio.reader (Bytes.create 1) ~len:0 in
  Alcotest.check_raises "past end" (Invalid_argument "Bitio.get_bit: past end of stream") (fun () ->
      ignore (Bitio.get_bit r))

(* ---------------------------------------------------------------- codec *)

(* One message per Msg.value constructor (plus a nested tuple). *)
let sample_msgs =
  [
    Msg.empty;
    Msg.bool true;
    Msg.bool false;
    Msg.int_in ~lo:(-1) ~hi:62 (-1);
    Msg.int_in ~lo:7 ~hi:7 7;
    Msg.nat 0;
    Msg.nat 1_000_000;
    Msg.vertex ~n:2 1;
    Msg.vertex_opt ~n:1000 None;
    Msg.vertex_opt ~n:1000 (Some 999);
    Msg.edge ~n:50 (3, 49);
    Msg.vertices ~n:300 [];
    Msg.vertices ~n:300 [ 0; 299; 150 ];
    Msg.edges ~n:300 [];
    Msg.edges ~n:300 [ (0, 299); (12, 13) ];
    Msg.tuple [];
    Msg.tuple
      [ Msg.nat 5; Msg.edges ~n:40 [ (1, 2) ]; Msg.tuple [ Msg.bool true; Msg.vertex ~n:9 8 ] ];
  ]

let roundtrip msg =
  let payload, bits = Codec.encode_payload msg in
  checki "payload length = Msg.bits" (Msg.bits msg) bits;
  checki "payload bytes = ceil(bits/8)" ((bits + 7) / 8) (Bytes.length payload);
  let back = Codec.decode_payload (Msg.layout msg) ~bits payload in
  checkb "value round-trips" true (Msg.value back = Msg.value msg);
  checki "bits round-trip" (Msg.bits msg) (Msg.bits back);
  checkb "layout round-trips" true (Msg.layout back = Msg.layout msg)

let test_codec_every_constructor () = List.iter roundtrip sample_msgs

let test_layout_descriptor_roundtrip () =
  List.iter
    (fun msg ->
      let d = Codec.layout_to_bytes (Msg.layout msg) in
      let pos = ref 0 in
      let back = Codec.get_layout d pos in
      checkb "layout descriptor round-trips" true (back = Msg.layout msg);
      checki "descriptor fully consumed" (Bytes.length d) !pos)
    sample_msgs

(* ---------------------------------------------------------------- frame *)

let test_frame_buffer_roundtrip () =
  List.iter
    (fun msg ->
      let frame = Frame.encode msg in
      let pos = ref 0 in
      let back = Frame.decode frame pos in
      checki "frame fully consumed" (Bytes.length frame) !pos;
      checkb "frame round-trips" true (Msg.value back = Msg.value msg && Msg.bits back = Msg.bits msg);
      checkb "overhead positive" true
        (Frame.overhead_bits ~frame_bytes:(Bytes.length frame) ~payload_bits:(Msg.bits msg) > 0))
    sample_msgs

let stream_roundtrip tr =
  let sent = List.map (fun msg -> (msg, Frame.write tr msg)) sample_msgs in
  List.iter
    (fun (msg, wrote) ->
      let back, read = Frame.read tr in
      checki "read size = written size" wrote read;
      checkb "stream round-trips" true (Msg.value back = Msg.value msg && Msg.bits back = Msg.bits msg))
    sent

let test_frame_over_pipe () = stream_roundtrip (Transport.pipe ())

let test_frame_over_socketpair () =
  let tr = Transport.socketpair () in
  stream_roundtrip tr;
  Transport.close tr

let test_exchange_large_frame_socketpair () =
  (* a frame far bigger than a kernel socket buffer must not deadlock the
     single-process loopback exchange *)
  let tr = Transport.socketpair () in
  let es = List.init 200_000 (fun i -> (i mod 4096, (i * 7) mod 4096)) in
  let msg = Msg.edges ~n:4096 es in
  let back, bytes = Frame.exchange tr msg in
  checkb "big frame round-trips" true (Msg.value back = Msg.value msg);
  checkb "frame really big" true (bytes > 256 * 1024);
  Transport.close tr

(* ------------------------------------------------------ frame hardening *)

(* Every malformed input must raise the typed Wire_error — never a bare
   Invalid_argument/Failure, an out-of-bounds read, or a wrong message. *)

let raises_wire_error name f =
  match f () with
  | _ -> Alcotest.failf "%s: decoded garbage instead of raising Wire_error" name
  | exception Wire_error.Wire_error _ -> ()
  | exception e ->
      Alcotest.failf "%s: raised %s instead of Wire_error" name (Printexc.to_string e)

(* A frame body built by hand: bit-count varint, layout descriptor bytes,
   payload bytes, correct checksum, length prefix — so individual fields
   can be forged while the rest stays honest. *)
let forge_frame ~bits ~layout_bytes ~payload =
  let body = Buffer.create 32 in
  Codec.put_varint body bits;
  Buffer.add_bytes body layout_bytes;
  Buffer.add_bytes body payload;
  let data = Buffer.to_bytes body in
  let sum = ref 0 in
  Bytes.iter (fun c -> sum := !sum + Char.code c) data;
  Buffer.add_char body (Char.chr (!sum land 0xff));
  Buffer.add_char body (Char.chr ((!sum lsr 8) land 0xff));
  let frame = Buffer.create (Buffer.length body + 2) in
  Codec.put_varint frame (Buffer.length body);
  Buffer.add_buffer frame body;
  Buffer.to_bytes frame

let test_frame_truncated_varint () =
  (* a length prefix whose continuation never ends, cut off by the stream *)
  let tr = Transport.pipe () in
  Transport.send tr (Bytes.of_string "\x80");
  raises_wire_error "truncated varint over pipe" (fun () -> Frame.read tr);
  (* and the same shape inside a buffer *)
  raises_wire_error "truncated varint in buffer" (fun () ->
      Frame.decode (Bytes.of_string "\x80") (ref 0));
  (* a varint that never terminates within its 10-byte budget *)
  let tr2 = Transport.pipe () in
  Transport.send tr2 (Bytes.make 11 '\x80');
  raises_wire_error "unterminated varint" (fun () -> Frame.read tr2)

let test_frame_length_larger_than_buffer () =
  (* length field says 100 bytes; the buffer holds 3 *)
  raises_wire_error "length > buffer" (fun () ->
      Frame.decode (Bytes.of_string "\x64abc") (ref 0));
  (* a length beyond the hard cap must refuse before allocating *)
  let b = Buffer.create 8 in
  Codec.put_varint b (Frame.max_frame_bytes + 1);
  raises_wire_error "length > max_frame_bytes" (fun () -> Frame.decode (Buffer.to_bytes b) (ref 0))

let test_frame_zero_length () =
  (* body length 0: shorter than any legal frame *)
  raises_wire_error "zero-length frame" (fun () -> Frame.decode (Bytes.of_string "\x00") (ref 0))

let test_frame_garbage_layout () =
  (* honest checksum and lengths around an unknown layout tag *)
  let frame = forge_frame ~bits:0 ~layout_bytes:(Bytes.of_string "\xff") ~payload:Bytes.empty in
  raises_wire_error "garbage layout descriptor" (fun () -> Frame.decode frame (ref 0))

let test_frame_bit_count_mismatch () =
  (* a bool layout (1 payload bit) claiming 9 payload bits *)
  let layout_bytes = Codec.layout_to_bytes (Msg.layout (Msg.bool true)) in
  let frame = forge_frame ~bits:9 ~layout_bytes ~payload:(Bytes.make 2 '\x00') in
  raises_wire_error "payload bit-count mismatch" (fun () -> Frame.decode frame (ref 0))

let test_frame_checksum_catches_every_body_flip () =
  (* flip every single bit of the frame body (everything after the length
     prefix): the mod-2^16 byte-sum checksum must catch each one *)
  let msg = Msg.tuple [ Msg.nat 5; Msg.edge ~n:40 (1, 2); Msg.bool true ] in
  let frame = Frame.encode msg in
  let body_start =
    let pos = ref 0 in
    ignore (Codec.get_varint frame pos);
    !pos
  in
  for bit = 8 * body_start to (8 * Bytes.length frame) - 1 do
    let copy = Bytes.copy frame in
    Bytes.set copy (bit / 8)
      (Char.chr (Char.code (Bytes.get copy (bit / 8)) lxor (1 lsl (bit mod 8))));
    raises_wire_error (Printf.sprintf "bit flip at %d" bit) (fun () -> Frame.decode copy (ref 0))
  done

(* --------------------------------------------------- wire-runtime parity *)

type proto_run = ?tap:Channel.tap -> seed:int -> Partition.t -> Tfree.Tester.report

let protocols ~davg : (string * proto_run) list =
  [
    ("unrestricted", fun ?tap ~seed parts -> Tfree.Tester.unrestricted ?tap ~seed params parts);
    ("sim", fun ?tap ~seed parts -> Tfree.Tester.simultaneous ?tap ~seed params ~d:davg parts);
    ("oblivious", fun ?tap ~seed parts -> Tfree.Tester.simultaneous_oblivious ?tap ~seed params parts);
    ("exact", fun ?tap ~seed parts -> Tfree.Tester.exact ?tap ~seed parts);
  ]

(* The acceptance identity, per protocol and transport: same verdict, same
   accounted bits, and wire_bytes*8 - framing_overhead_bits = accounted_bits
   exactly. *)
let parity_suite transport () =
  let k = 4 in
  List.iter
    (fun seed ->
      let rng = Rng.create (7_321 * seed) in
      let g = Gen.far_with_degree rng ~n:260 ~d:5.0 ~eps:0.1 in
      let parts = Partition.with_duplication rng ~k ~dup_p:0.3 g in
      let davg = Graph.avg_degree g in
      List.iter
        (fun (name, (run : proto_run)) ->
          let model = run ~seed parts in
          let net = Wire.create ~transport ~k () in
          let wired = run ~tap:(Wire.tap net) ~seed parts in
          let r = Wire.report net ~accounted_bits:wired.Tfree.Tester.bits in
          Wire.close net;
          checkb (name ^ " verdict parity") true
            (model.Tfree.Tester.verdict = wired.Tfree.Tester.verdict);
          checki (name ^ " accounted bits parity") model.Tfree.Tester.bits wired.Tfree.Tester.bits;
          checki
            (name ^ " reconciliation identity")
            r.Wire.accounted_bits
            ((8 * r.Wire.wire_bytes) - r.Wire.framing_overhead_bits);
          checkb (name ^ " reconciles") true (Wire.reconciles r);
          checkb (name ^ " frames flowed") true (r.Wire.frames > 0))
        (protocols ~davg))
    [ 1; 2; 3 ]

let test_parity_blackboard () =
  let k = 4 in
  let seed = 5 in
  let rng = Rng.create 31_337 in
  let g = Gen.far_with_degree rng ~n:200 ~d:5.0 ~eps:0.1 in
  let parts = Partition.with_duplication rng ~k ~dup_p:0.3 g in
  let model = Tfree.Tester.unrestricted ~mode:Runtime.Blackboard ~seed params parts in
  let net = Wire.create ~k () in
  let wired =
    Tfree.Tester.unrestricted ~mode:Runtime.Blackboard ~tap:(Wire.tap net) ~seed params parts
  in
  let r = Wire.report net ~accounted_bits:wired.Tfree.Tester.bits in
  Wire.close net;
  checkb "blackboard verdict parity" true (model.Tfree.Tester.verdict = wired.Tfree.Tester.verdict);
  checki "blackboard bits parity" model.Tfree.Tester.bits wired.Tfree.Tester.bits;
  checkb "blackboard reconciles" true (Wire.reconciles r)

let test_wire_runtime_surface () =
  (* drive the Runtime-shaped surface directly and reconcile its own ledger *)
  let rng = Rng.create 99 in
  let g = Gen.far_with_degree rng ~n:100 ~d:4.0 ~eps:0.1 in
  let parts = Partition.disjoint_random rng ~k:3 g in
  let wt = Wire.make ~seed:7 parts in
  let n = Wire.n wt in
  let replies =
    Wire.ask_all wt ~req:(Msg.nat 3) (fun _ gj -> Msg.edges ~n (Graph.edges gj))
  in
  checki "one reply per player" (Wire.k wt) (Array.length replies);
  Wire.tell_all wt (Msg.bool true);
  let echoed = Wire.query wt 1 ~req:(Msg.vertex ~n 0) (fun _ -> Msg.nat 42) in
  checki "query reply decoded" 42 (Msg.get_int echoed);
  checkb "someone owns an edge" true (Wire.any_player wt (fun gj -> Graph.m gj > 0));
  let r = Wire.reconcile wt in
  Wire.close_runtime wt;
  checki "surface accounted = cost ledger" (Cost.total (Wire.cost wt)) r.Wire.accounted_bits;
  checkb "surface reconciles" true (Wire.reconciles r)

(* -------------------------------------------------------- fault schedules *)

let test_fault_spec_roundtrip () =
  let sched =
    [
      { Fault.op = 2; kind = Fault.Drop };
      { Fault.op = 5; kind = Fault.Corrupt { bit = 13 } };
      { Fault.op = 7; kind = Fault.Truncate { keep = 3 } };
      { Fault.op = 9; kind = Fault.Delay { amount = 2 } };
      { Fault.op = 11; kind = Fault.Partial { at = 4 } };
      { Fault.op = 20; kind = Fault.Close };
    ]
  in
  let spec = Fault.to_string sched in
  (match Fault.parse spec with
  | Ok back -> checkb "explicit spec round-trips" true (back = sched)
  | Error msg -> Alcotest.fail msg);
  (match Fault.parse "" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty spec is not the empty schedule");
  match Fault.parse "3:gremlins" with
  | Ok _ -> Alcotest.fail "accepted an unknown fault kind"
  | Error _ -> ()

let test_fault_seeded_deterministic () =
  let spec = "seed=42,rate=0.2,ops=100" in
  match (Fault.parse spec, Fault.parse spec) with
  | Ok a, Ok b ->
      checkb "seeded schedule is a pure function of the spec" true (a = b);
      checkb "a 20% rate over 100 ops fires at least once" true (a <> []);
      let distinct =
        match Fault.parse "seed=43,rate=0.2,ops=100" with Ok c -> c <> a | Error _ -> false
      in
      checkb "different seed, different schedule" true distinct
  | _ -> Alcotest.fail "seeded spec did not parse"

(* ------------------------------------------------------------ chaos matrix *)

(* The acceptance matrix: every fault kind × every protocol on this
   transport, each fired at several schedule positions.  A run under
   injected faults either completes with exactly the fault-free verdict and
   bits (the fault missed the traffic, or was benign — delay and partial
   deliver the same bytes) or aborts with a typed Wire_error.  Wrong
   verdicts never; hangs never (the run below either returns or raises —
   a hang would time the suite out).  Benign kinds must never abort. *)
let chaos_matrix transport () =
  let k = 4 in
  let rng = Rng.create 4242 in
  let g = Gen.far_with_degree rng ~n:200 ~d:5.0 ~eps:0.1 in
  let parts = Partition.with_duplication rng ~k ~dup_p:0.3 g in
  let davg = Graph.avg_degree g in
  let kinds =
    [
      Fault.Drop;
      Fault.Corrupt { bit = 13 };
      Fault.Truncate { keep = 2 };
      Fault.Delay { amount = 2 };
      Fault.Partial { at = 3 };
      Fault.Close;
    ]
  in
  List.iter
    (fun (name, (run : proto_run)) ->
      let base = run ~seed:9 parts in
      List.iter
        (fun kind ->
          List.iter
            (fun op ->
              let label = Printf.sprintf "%s/%s@%d" name (Fault.kind_name kind) op in
              let net = Wire.create ~fault:[ { Fault.op; kind } ] ~transport ~k () in
              (match run ~tap:(Wire.tap net) ~seed:9 parts with
              | wired ->
                  checkb (label ^ ": verdict survives") true
                    (wired.Tfree.Tester.verdict = base.Tfree.Tester.verdict);
                  checki (label ^ ": bits survive") base.Tfree.Tester.bits wired.Tfree.Tester.bits
              | exception Wire_error.Wire_error _ ->
                  checkb (label ^ ": benign faults must not abort") false (Fault.benign kind));
              Wire.close net)
            [ 0; 3; 10 ])
        kinds)
    (protocols ~davg)

(* ------------------------------------------------------- tap composition *)

module Trace = Tfree_trace.Trace

(* The full acceptance matrix: identity ∘ trace ∘ wire installed together,
   on every protocol × {coordinator, blackboard} × {model, pipe,
   socketpair}.  Composition must change no verdict and no accounted bit
   count, the wire leg must still reconcile, and the trace leg must satisfy
   the decomposition identity. *)
let composition_suite mode transport () =
  let k = 4 and seed = 2 in
  let rng = Rng.create 52_901 in
  let g = Gen.far_with_degree rng ~n:240 ~d:5.0 ~eps:0.1 in
  let parts = Partition.with_duplication rng ~k ~dup_p:0.3 g in
  let davg = Graph.avg_degree g in
  let run_with (run : proto_run) ?tap () =
    match mode with
    | Runtime.Coordinator -> run ?tap ~seed parts
    | Runtime.Blackboard ->
        (* only the adaptive protocol distinguishes the modes; the
           simultaneous ones go through their own referee *)
        Tfree.Tester.unrestricted ~mode ?tap ~seed params parts
  in
  List.iter
    (fun (name, run) ->
      let model = run_with run () in
      let collector = Trace.create () in
      let net = Option.map (fun tr -> Wire.create ~transport:tr ~k ()) transport in
      let tap =
        Channel.compose_all
          (Channel.identity
          :: Trace.tap collector
          :: Option.to_list (Option.map Wire.tap net))
      in
      let traced = Trace.with_collector collector (fun () -> run_with run ~tap ()) in
      checkb (name ^ " verdict unchanged by composition") true
        (model.Tfree.Tester.verdict = traced.Tfree.Tester.verdict);
      checki (name ^ " accounted bits unchanged") model.Tfree.Tester.bits traced.Tfree.Tester.bits;
      checkb (name ^ " decomposition identity") true
        (Trace.decomposes collector ~accounted:traced.Tfree.Tester.bits);
      Option.iter
        (fun net ->
          let r = Wire.report net ~accounted_bits:traced.Tfree.Tester.bits in
          Wire.close net;
          checkb (name ^ " wire reconciles under composition") true (Wire.reconciles r);
          checki (name ^ " one frame per traced event") (Trace.message_count collector)
            r.Wire.frames)
        net)
    (protocols ~davg)

(* -------------------------------------------------------------- service *)

let test_service_request_json_roundtrip () =
  let req =
    {
      Service.family = Service.Behrend;
      partition = Service.Skewed;
      protocol = Service.Unrestricted;
      n = 123;
      d = 3.5;
      k = 6;
      eps = 0.2;
      seed = 11;
      transport = Wire.Socketpair;
      fault = "2:drop,5:corrupt@13";
    }
  in
  match Service.request_of_json (Service.request_to_json req) with
  | Ok back -> checkb "request round-trips" true (back = req)
  | Error msg -> Alcotest.fail msg

let test_service_request_defaults () =
  match Service.request_of_json (Jsonout.Obj [ ("protocol", Jsonout.Str "exact") ]) with
  | Ok req ->
      checkb "defaults filled" true
        (req = { Service.default_request with protocol = Service.Exact })
  | Error msg -> Alcotest.fail msg

let test_service_request_rejects_unknown () =
  (match Service.request_of_json (Jsonout.Obj [ ("protocol", Jsonout.Str "quantum") ]) with
  | Ok _ -> Alcotest.fail "accepted an unknown protocol"
  | Error _ -> ());
  match Service.request_of_json (Jsonout.Obj [ ("fault", Jsonout.Str "3:gremlins") ]) with
  | Ok _ -> Alcotest.fail "accepted an unparseable fault spec"
  | Error _ -> ()

let test_service_run_request_reconciles () =
  List.iter
    (fun protocol ->
      let resp =
        Service.run_request { Service.default_request with protocol; n = 150; seed = 3 }
      in
      checkb
        (Service.protocol_to_string protocol ^ " response reconciles")
        true
        (Wire.reconciles resp.Service.wire);
      match Service.response_of_json (Service.response_to_json resp) with
      | Ok back -> checkb "response JSON round-trips" true (back = resp)
      | Error msg -> Alcotest.fail msg)
    [ Service.Unrestricted; Service.Sim; Service.Oblivious; Service.Exact ]

(* -------------------------------------------- serve-resilience (forked) *)

(* Fork a real server on a temp socket, run [f path] against it, shut it
   down and assert the child saw exactly [expect_served] queries and exited
   cleanly — a daemon that died under a misbehaving client fails here. *)
let with_forked_server ?(fault = []) ?max_clients ?cache_capacity ?max_version ~tag ~expect_served
    f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tfree-test-%s-%d.sock" tag (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  match Unix.fork () with
  | 0 ->
      exit
        (if
           Service.serve ?max_clients ?cache_capacity ?max_version ~line_timeout_s:5.0 ~fault
             ~path ()
           = expect_served
         then 0
         else 1)
  | server -> (
      let rec await tries =
        if not (Sys.file_exists path) then
          if tries = 0 then Alcotest.fail "server socket never appeared"
          else (
            Unix.sleepf 0.05;
            await (tries - 1))
      in
      await 100;
      (match f path with
      | () -> ()
      | exception e ->
          (try Service.client_shutdown ~path () with _ -> ());
          ignore (Unix.waitpid [] server);
          raise e);
      (* the shutdown connection can itself be shed under a tiny
         --max-clients; keep asking until the server exits *)
      let rec finish tries =
        (try Service.client_shutdown ~path () with Unix.Unix_error _ -> ());
        match Unix.waitpid [ Unix.WNOHANG ] server with
        | 0, _ ->
            if tries = 0 then begin
              Unix.kill server Sys.sigkill;
              ignore (Unix.waitpid [] server);
              Alcotest.fail "server did not exit after shutdown"
            end
            else begin
              Unix.sleepf 0.05;
              finish (tries - 1)
            end
        | _, Unix.WEXITED 0 -> ()
        | _ -> Alcotest.fail "server did not exit cleanly (or served a wrong query count)"
      in
      finish 100)

let stats_num stats k =
  match Option.bind (Jsonout.member k stats) Jsonout.to_float with
  | Some f -> int_of_float f
  | None -> Alcotest.failf "stats missing %S" k

let stats_category stats name =
  match Jsonout.member "errors_by_category" stats with
  | Some cats -> stats_num cats name
  | None -> Alcotest.fail "stats missing errors_by_category"

(* A malformed line must get a structured categorized error reply on the
   same connection, which must then serve a normal query; the stats
   telemetry must count the error under "malformed" and nothing else. *)
let test_service_malformed_line_keeps_connection () =
  with_forked_server ~tag:"malformed" ~expect_served:1 (fun path ->
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect sock (Unix.ADDR_UNIX path);
      let out = Unix.out_channel_of_descr sock and inp = Unix.in_channel_of_descr sock in
      let exchange line =
        output_string out (line ^ "\n");
        flush out;
        match In_channel.input_line inp with
        | Some reply -> reply
        | None -> Alcotest.fail "server closed the connection"
      in
      (match Jsonout.parse (exchange "{definitely not json") with
      | Ok j -> (
          match (Jsonout.member "ok" j, Jsonout.member "error" j, Jsonout.member "category" j) with
          | Some (Jsonout.Bool false), Some (Jsonout.Str _), Some (Jsonout.Str "malformed") -> ()
          | _ -> Alcotest.fail "malformed line did not get a structured categorized error")
      | Error msg -> Alcotest.failf "error reply is not JSON: %s" msg);
      (* same connection, normal query *)
      let req = { Service.default_request with protocol = Service.Exact; n = 60 } in
      (match
         Result.bind
           (Jsonout.parse (exchange (Jsonout.to_line (Service.request_to_json req))))
           Service.response_of_json
       with
      | Ok resp -> checkb "query after malformed line reconciles" true (Wire.reconciles resp.Service.wire)
      | Error msg -> Alcotest.failf "connection unusable after malformed line: %s" msg);
      Unix.close sock;
      match Service.client_stats ~path () with
      | Ok stats ->
          checki "stats counted the error" 1 (stats_num stats "errors");
          checki "the error is malformed" 1 (stats_category stats "malformed");
          checki "no transport errors" 0 (stats_category stats "transport");
          checki "stats counted the query" 1 (stats_num stats "queries_served")
      | Error msg -> Alcotest.failf "stats query failed: %s" msg)

(* A client that writes half a request and vanishes must cost exactly one
   transport-category error; the daemon keeps serving. *)
let test_service_client_killed_mid_request () =
  with_forked_server ~tag:"killed" ~expect_served:1 (fun path ->
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect sock (Unix.ADDR_UNIX path);
      let half = "{\"protocol\": \"ex" in
      ignore (Unix.write_substring sock half 0 (String.length half));
      Unix.close sock;
      let req = { Service.default_request with protocol = Service.Exact; n = 60 } in
      (match Service.client_query ~path req with
      | Ok resp ->
          checkb "query after killed client reconciles" true (Wire.reconciles resp.Service.wire)
      | Error msg -> Alcotest.failf "daemon unusable after killed client: %s" msg);
      match Service.client_stats ~path () with
      | Ok stats ->
          checki "killed client = one transport error" 1 (stats_category stats "transport");
          checki "one error total" 1 (stats_num stats "errors");
          checki "the real query still served" 1 (stats_num stats "queries_served")
      | Error msg -> Alcotest.failf "stats query failed: %s" msg)

(* The retry acceptance case: the server sabotages its first three replies
   (drop, bit-flip, truncate-and-close); client_query with retries must
   recover the fault-free verdict, spending exactly three retries, and the
   server's stats must count exactly the injected schedule. *)
let test_service_client_retry_recovers () =
  let fault =
    [
      { Fault.op = 0; kind = Fault.Drop };
      { Fault.op = 1; kind = Fault.Corrupt { bit = 13 } };
      { Fault.op = 2; kind = Fault.Truncate { keep = 5 } };
    ]
  in
  (* the server runs the query on all four attempts; only the fourth reply
     survives the schedule *)
  with_forked_server ~fault ~tag:"retry" ~expect_served:4 (fun path ->
      let req = { Service.default_request with protocol = Service.Exact; n = 60 } in
      let m = Metrics.create () in
      match Service.client_query ~retries:5 ~backoff_s:0.01 ~metrics:m ~path req with
      | Error msg -> Alcotest.failf "retry did not recover: %s" msg
      | Ok resp -> (
          let local = Service.run_request req in
          checkb "recovered verdict = fault-free verdict" true
            (resp.Service.verdict = local.Service.verdict);
          checki "recovered bits = fault-free bits" local.Service.bits resp.Service.bits;
          checki "exactly three retries spent" 3 (Metrics.retries m);
          match Service.client_stats ~path () with
          | Ok stats ->
              checki "server tallied the injected schedule exactly" (List.length fault)
                (stats_num stats "injected_faults");
              checki "injected faults are not service errors" 0 (stats_num stats "errors")
          | Error msg -> Alcotest.failf "stats query failed: %s" msg))

(* ------------------------------------------------ concurrent event loop *)

(* Fork [n] concurrent client processes (processes, not domains: a domain
   would forbid every later [Unix.fork] in this binary); each child runs
   [child i] and reports its (wrong, retries) tally over a shared pipe —
   one short line per child, atomic under PIPE_BUF.  Returns the tallies
   once every child has exited. *)
let fork_clients ?(coordinate = fun () -> ()) n child =
  let r, w = Unix.pipe () in
  let pids =
    List.init n (fun i ->
        match Unix.fork () with
        | 0 ->
            Unix.close r;
            let wrong, retries = (try child i with _ -> (1000, 0)) in
            let line = Printf.sprintf "%d %d\n" wrong retries in
            ignore (Unix.write_substring w line 0 (String.length line));
            Unix._exit 0
        | pid -> pid)
  in
  Unix.close w;
  coordinate ();
  let ic = Unix.in_channel_of_descr r in
  let tallies =
    List.init n (fun _ ->
        match In_channel.input_line ic with
        | Some line -> Scanf.sscanf line "%d %d" (fun a b -> (a, b))
        | None -> (1000, 0))
  in
  List.iter (fun pid -> ignore (Unix.waitpid [] pid)) pids;
  In_channel.close ic;
  tallies

(* The head-of-line regression test: K clients each hold ONE connection
   open and none will close it before every client has gotten a first
   reply.  A sequential accept loop deadlocks here (client 1 pins the
   server until it closes, which it refuses to do until client 2 is
   answered); the select event loop serves all K interleaved.  Every reply
   must equal the fault-free local run — concurrency must never change a
   verdict. *)
let test_concurrent_clients_interleaved () =
  let clients = 4 and per_client = 3 in
  let req_for c q =
    { Service.default_request with protocol = Service.Exact; n = 60; seed = (10 * c) + q }
  in
  (* expected replies computed before any concurrency enters the picture *)
  let expected =
    Array.init clients (fun c ->
        Array.init per_client (fun q -> Service.run_request (req_for c q)))
  in
  with_forked_server ~tag:"interleaved" ~expect_served:(clients * per_client) (fun path ->
      (* cross-process barrier: each client reports its first reply on
         [ready], then blocks on [go] until the parent has seen all K *)
      let ready_r, ready_w = Unix.pipe () in
      let go_r, go_w = Unix.pipe () in
      let one = Bytes.create 1 in
      let run_client c =
        let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
          (fun () ->
            Unix.connect sock (Unix.ADDR_UNIX path);
            let wrong = ref 0 in
            for q = 0 to per_client - 1 do
              let line = Jsonout.to_line (Service.request_to_json (req_for c q)) in
              let n = String.length line + 1 in
              assert (Unix.write_substring sock (line ^ "\n") 0 n = n);
              (match
                 Service.read_line_deadline sock ~deadline:(Unix.gettimeofday () +. 30.0)
               with
              | Service.Line reply -> (
                  match Result.bind (Jsonout.parse reply) Service.response_of_json with
                  | Ok resp -> if resp <> expected.(c).(q) then incr wrong
                  | Error _ -> incr wrong)
              | _ -> incr wrong);
              if q = 0 then begin
                (* hold the connection hostage until every client has been
                   answered once over its own open connection *)
                assert (Unix.write ready_w one 0 1 = 1);
                assert (Unix.read go_r one 0 1 = 1)
              end
            done;
            (!wrong, 0))
      in
      let release () =
        (* every client has an open served connection before any proceeds *)
        let byte = Bytes.create 1 in
        for _ = 1 to clients do
          assert (Unix.read ready_r byte 0 1 = 1)
        done;
        for _ = 1 to clients do
          assert (Unix.write go_w byte 0 1 = 1)
        done
      in
      let tallies = fork_clients ~coordinate:release clients run_client in
      let wrong = List.fold_left (fun acc (w, _) -> acc + w) 0 tallies in
      List.iter Unix.close [ ready_r; ready_w; go_r; go_w ];
      checki "zero wrong replies across all interleaved clients" 0 wrong;
      match Service.client_stats ~path () with
      | Ok stats ->
          checki "served every query" (clients * per_client) (stats_num stats "queries_served");
          checki "no errors" 0 (stats_num stats "errors");
          let conns =
            match Jsonout.member "connections" stats with
            | Some c -> c
            | None -> Alcotest.fail "stats missing connections"
          in
          checkb "accepted all clients concurrently" true
            (stats_num conns "accepted" >= clients);
          checki "nothing shed" 0 (stats_num conns "shed")
      | Error msg -> Alcotest.failf "stats query failed: %s" msg)

(* A batch must return one result per request, in order, each identical to
   the one-at-a-time reply for the same request — including a structured
   per-item error for a bad item that must not poison its neighbours. *)
let test_batch_matches_single_queries () =
  let good = List.init 4 (fun i -> { Service.default_request with protocol = Service.Exact; n = 60; seed = 20 + i }) in
  (* 4 good batch items + 4 single queries + the mixed batch's good item;
     the bad item serves nothing *)
  with_forked_server ~tag:"batch" ~expect_served:9 (fun path ->
      (match Service.client_batch ~path good with
      | Error msg -> Alcotest.failf "batch failed: %s" msg
      | Ok results ->
          checki "one result per request" (List.length good) (List.length results);
          List.iteri
            (fun i result ->
              match result with
              | Error msg -> Alcotest.failf "batch item %d failed: %s" i msg
              | Ok resp -> (
                  let req = List.nth good i in
                  checkb
                    (Printf.sprintf "batch item %d = fault-free local run" i)
                    true
                    (resp = Service.run_request req);
                  match Service.client_query ~path req with
                  | Ok single ->
                      checkb
                        (Printf.sprintf "batch item %d = single query" i)
                        true (resp = single)
                  | Error msg -> Alcotest.failf "single query %d failed: %s" i msg))
            results);
      (* a bad item inside a batch is its own error, not the batch's *)
      (match
         Service.client_batch ~path
           [ { Service.default_request with n = -5 }; { Service.default_request with protocol = Service.Exact; n = 60; seed = 20 } ]
       with
      | Error msg -> Alcotest.failf "mixed batch failed outright: %s" msg
      | Ok [ bad; ok ] ->
          checkb "bad item is an Error" true (Result.is_error bad);
          checkb "good neighbour still served" true
            (ok = Ok (Service.run_request { Service.default_request with protocol = Service.Exact; n = 60; seed = 20 }))
      | Ok _ -> Alcotest.fail "mixed batch did not return two results");
      match Service.client_stats ~path () with
      | Ok stats -> (
          match Jsonout.member "batch" stats with
          | Some b ->
              checki "two batch exchanges" 2 (stats_num b "batches");
              checki "six batch items" 6 (stats_num b "items");
              checki "bad item recorded as run_failure" 1 (stats_category stats "run_failure")
          | None -> Alcotest.fail "stats missing batch")
      | Error msg -> Alcotest.failf "stats query failed: %s" msg)

(* Seed reuse must hit the instance cache (no rebuild) without changing a
   single reply byte; the stats cache counters must reconcile exactly:
   lookups = queries served = hits + misses, misses = distinct keys. *)
let test_cache_hits_reconcile_in_stats () =
  let base = { Service.default_request with protocol = Service.Exact; n = 60 } in
  let reqs =
    List.concat_map (fun seed -> List.init 3 (fun _ -> { base with Service.seed = seed })) [ 1; 2 ]
  in
  (* 6 queries over 2 distinct (family, ..., seed) keys *)
  with_forked_server ~tag:"cache" ~expect_served:(List.length reqs) (fun path ->
      let replies =
        List.map
          (fun req ->
            match Service.client_query ~path req with
            | Ok resp -> resp
            | Error msg -> Alcotest.failf "query failed: %s" msg)
          reqs
      in
      List.iter2
        (fun req resp ->
          checkb "cached reply = fault-free local run" true (resp = Service.run_request req))
        reqs replies;
      match Service.client_stats ~path () with
      | Ok stats -> (
          match Jsonout.member "cache" stats with
          | Some cache ->
              checki "one lookup per query" (List.length reqs) (stats_num cache "lookups");
              checki "misses = distinct instance keys" 2 (stats_num cache "misses");
              checki "hits = the rest" (List.length reqs - 2) (stats_num cache "hits");
              checki "hits + misses = lookups"
                (stats_num cache "lookups")
                (stats_num cache "hits" + stats_num cache "misses")
          | None -> Alcotest.fail "stats missing cache")
      | Error msg -> Alcotest.failf "stats query failed: %s" msg)

(* Chaos under concurrency: a reply-fault schedule that drops, kills and
   corrupts connections while K clients query in parallel.  Every client
   must still end with its exact fault-free verdict (retrying through the
   chaos), and the stats must reconcile: served = successes + retries,
   every scheduled fault fired, zero service errors. *)
let test_chaos_schedule_spares_other_clients () =
  let fault =
    [
      { Fault.op = 0; kind = Fault.Drop };
      { Fault.op = 2; kind = Fault.Close };
      { Fault.op = 5; kind = Fault.Corrupt { bit = 13 } };
    ]
  in
  let clients = 3 and per_client = 2 in
  let req_for c q =
    { Service.default_request with protocol = Service.Exact; n = 60; seed = (100 * c) + q }
  in
  let expected =
    Array.init clients (fun c ->
        Array.init per_client (fun q -> Service.run_request (req_for c q)))
  in
  (* every sabotaged reply is a query the server processed and one client
     retry, so served = clients·per_client + |schedule| exactly *)
  with_forked_server ~fault ~tag:"chaos-conc"
    ~expect_served:((clients * per_client) + List.length fault)
    (fun path ->
      let run_client c =
        let m = Metrics.create () in
        let wrong = ref 0 in
        for q = 0 to per_client - 1 do
          match
            Service.client_query ~retries:8 ~backoff_s:0.01 ~backoff_seed:c ~metrics:m ~path
              (req_for c q)
          with
          | Ok resp -> if resp <> expected.(c).(q) then incr wrong
          | Error _ -> incr wrong
        done;
        (!wrong, Metrics.retries m)
      in
      let results = fork_clients clients run_client in
      let wrong = List.fold_left (fun acc (w, _) -> acc + w) 0 results in
      let retries = List.fold_left (fun acc (_, r) -> acc + r) 0 results in
      checki "zero wrong verdicts under chaos" 0 wrong;
      checki "one retry per scheduled fault" (List.length fault) retries;
      match Service.client_stats ~path () with
      | Ok stats ->
          checki "served = successes + retries"
            ((clients * per_client) + retries)
            (stats_num stats "queries_served");
          checki "every scheduled fault fired" (List.length fault)
            (stats_num stats "injected_faults");
          checki "injected faults are not service errors" 0 (stats_num stats "errors")
      | Error msg -> Alcotest.failf "stats query failed: %s" msg)

(* At --max-clients the server sheds with a typed overload error — a
   structured reply, never a hang — and the client treats it as transient:
   once the hog disconnects, a retry succeeds. *)
let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_overload_sheds_with_typed_error () =
  with_forked_server ~max_clients:1 ~tag:"overload" ~expect_served:1 (fun path ->
      let hog = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect hog (Unix.ADDR_UNIX path);
      (* let the event loop admit the hog before piling on *)
      Unix.sleepf 0.1;
      let req = { Service.default_request with protocol = Service.Exact; n = 60 } in
      (match Service.client_query ~path req with
      | Ok _ -> Alcotest.fail "server over capacity still answered"
      | Error msg ->
          checkb
            (Printf.sprintf "overload error names capacity: %s" msg)
            true
            (contains_substring msg "capacity"));
      Unix.close hog;
      let m = Metrics.create () in
      (match Service.client_query ~retries:8 ~backoff_s:0.02 ~metrics:m ~path req with
      | Ok resp -> checkb "post-shed retry gets the true verdict" true (resp = Service.run_request req)
      | Error msg -> Alcotest.failf "retry after shedding failed: %s" msg);
      (* at max_clients 1 the stats connection itself can race the previous
         connection's EOF and get shed; it is transient, so retry *)
      let rec stats_with_retry tries =
        match Service.client_stats ~path () with
        | Error _ when tries > 0 ->
            Unix.sleepf 0.05;
            stats_with_retry (tries - 1)
        | r -> r
      in
      match stats_with_retry 20 with
      | Ok stats ->
          checkb "at least one connection shed" true (stats_category stats "overload" >= 1);
          (match Jsonout.member "connections" stats with
          | Some conns ->
              checkb "shed tally matches overload errors" true
                (stats_num conns "shed" = stats_category stats "overload")
          | None -> Alcotest.fail "stats missing connections");
          checki "the one real query served" 1 (stats_num stats "queries_served")
      | Error msg -> Alcotest.failf "stats query failed: %s" msg)

(* -------------------------------------------------- proto read buffer *)

(* The per-connection read buffer must release oversized allocations once
   consumption leaves at most a small tail: one near-8MB line or batch
   frame must not pin megabytes for the connection's lifetime. *)
let test_proto_rbuf_shrinks () =
  let rb = Proto.rbuf_create () in
  checki "fresh capacity is the default" Proto.rbuf_default_capacity (Proto.rbuf_capacity rb);
  let big = 5 * 1024 * 1024 in
  let chunk = Bytes.make 65536 'x' in
  let rec fill n =
    if n > 0 then begin
      Proto.rbuf_append rb chunk 0 (min n 65536);
      fill (n - 65536)
    end
  in
  fill big;
  let tail = Bytes.make 64 'y' in
  Proto.rbuf_append rb tail 0 64;
  checki "everything buffered" (big + 64) (Proto.rbuf_avail rb);
  checkb "buffer grew past the retain cap" true
    (Proto.rbuf_capacity rb > Proto.rbuf_retain_capacity);
  (* a partial consume that leaves a large tail must NOT shrink: the rest
     of the burst is still in flight *)
  Proto.rbuf_consume rb (1024 * 1024);
  checkb "large remaining tail keeps the allocation" true
    (Proto.rbuf_capacity rb > Proto.rbuf_retain_capacity);
  (* consuming down to a small tail releases the memory and keeps the tail *)
  Proto.rbuf_consume rb (big - (1024 * 1024));
  checki "tail intact" 64 (Proto.rbuf_avail rb);
  checkb "capacity released back to the default" true
    (Proto.rbuf_capacity rb <= Proto.rbuf_default_capacity);
  let kept = Bytes.sub (Proto.rbuf_data rb) (Proto.rbuf_start rb) 64 in
  checkb "tail bytes preserved across the shrink" true
    (Bytes.for_all (fun c -> c = 'y') kept);
  Proto.rbuf_consume rb 64;
  checki "empty after the tail" 0 (Proto.rbuf_avail rb);
  (* full drain of an oversized buffer also resets the allocation *)
  fill big;
  Proto.rbuf_consume rb (Proto.rbuf_avail rb);
  checki "full drain leaves the default allocation" Proto.rbuf_default_capacity
    (Proto.rbuf_capacity rb)

(* -------------------------------------------------- version negotiation *)

let stats_version stats v k =
  match
    Option.bind (Jsonout.member "protocol_versions" stats) (fun pv ->
        Option.bind (Jsonout.member (Printf.sprintf "v%d" v) pv) (Jsonout.member k))
  with
  | Some (Jsonout.Num f) -> int_of_float f
  | _ -> Alcotest.failf "stats missing protocol_versions.v%d.%s" v k

(* A v2 client against a v1-capped server: the handshake answers with 1,
   the exchange falls back to JSON lines, and every gauge lands on v1. *)
let test_negotiation_v2_client_v1_server () =
  with_forked_server ~max_version:1 ~tag:"neg-v2v1" ~expect_served:1 (fun path ->
      let req = { Service.default_request with protocol = Service.Exact; n = 60 } in
      (match Service.client_query ~protocol:Proto.V2 ~path req with
      | Ok resp ->
          checkb "v2 client serves over the JSON fallback" true (resp = Service.run_request req)
      | Error msg -> Alcotest.failf "v2 client against v1-capped server failed: %s" msg);
      match Service.client_stats ~path () with
      | Ok stats ->
          checki "served on v1" 1 (stats_version stats 1 "served");
          checki "nothing served on v2" 0 (stats_version stats 2 "served");
          checkb "v1 bytes recorded" true (stats_version stats 1 "bytes" > 0);
          checki "no v2 bytes" 0 (stats_version stats 2 "bytes");
          checki "no errors" 0 (stats_num stats "errors")
      | Error msg -> Alcotest.failf "stats query failed: %s" msg)

(* A v1 client against a v2 server: no handshake, plain JSON lines, wire
   compatibility unchanged — and the v1 byte gauge equals the two lines
   (newlines included) exactly. *)
let test_negotiation_v1_client_v2_server () =
  with_forked_server ~tag:"neg-v1v2" ~expect_served:1 (fun path ->
      let req = { Service.default_request with protocol = Service.Exact; n = 60 } in
      let expected = Service.run_request req in
      (match Service.client_query ~protocol:Proto.V1 ~path req with
      | Ok resp -> checkb "v1 client serves against a v2 server" true (resp = expected)
      | Error msg -> Alcotest.failf "v1 client against v2 server failed: %s" msg);
      let framed =
        String.length (Jsonout.to_line (Service.request_to_json req))
        + 1
        + String.length (Jsonout.to_line (Service.response_to_json expected))
        + 1
      in
      match Service.client_stats ~path () with
      | Ok stats ->
          checki "served on v1" 1 (stats_version stats 1 "served");
          checki "v1 byte gauge = the two lines exactly" framed (stats_version stats 1 "bytes");
          checki "nothing served on v2" 0 (stats_version stats 2 "served");
          checki "no v2 bytes" 0 (stats_version stats 2 "bytes")
      | Error msg -> Alcotest.failf "stats query failed: %s" msg)

(* v2 both sides: binary frames end to end, and the v2 byte gauge equals
   the query frame plus the reply frame exactly — handshake bytes and the
   stats exchange are excluded by design. *)
let test_negotiation_v2_v2_exact_bytes () =
  with_forked_server ~tag:"neg-v2v2" ~expect_served:1 (fun path ->
      let req = { Service.default_request with protocol = Service.Exact; n = 60 } in
      let expected = Service.run_request req in
      (match Service.client_query ~protocol:Proto.V2 ~path req with
      | Ok resp -> checkb "binary reply = local run" true (resp = expected)
      | Error msg -> Alcotest.failf "v2 exchange failed: %s" msg);
      let b = Proto.create_buf () in
      Service.encode_query_frame b req;
      let framed = Proto.frame_len b in
      Service.encode_response_frame b expected;
      let framed = framed + Proto.frame_len b in
      match Service.client_stats ~protocol:Proto.V2 ~path () with
      | Ok stats ->
          checki "served on v2" 1 (stats_version stats 2 "served");
          checki "v2 byte gauge = the two frames exactly" framed (stats_version stats 2 "bytes");
          checki "nothing served on v1" 0 (stats_version stats 1 "served");
          checki "no v1 bytes" 0 (stats_version stats 1 "bytes")
      | Error msg -> Alcotest.failf "stats query failed: %s" msg)

(* A garbage version byte (magic + version 0): the server must answer the
   refusal hello (magic, 0), tally one malformed error, and keep the
   connection usable as v1 — typed error, never a closed or hung socket. *)
let test_negotiation_garbage_version_byte () =
  with_forked_server ~tag:"neg-garbage" ~expect_served:1 (fun path ->
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect sock (Unix.ADDR_UNIX path);
      let hello = Printf.sprintf "%c%c" Proto.magic '\000' in
      ignore (Unix.write_substring sock hello 0 2);
      let reply = Bytes.create 2 in
      let rec read_exact off =
        if off < 2 then
          match Unix.read sock reply off (2 - off) with
          | 0 -> Alcotest.fail "server closed the connection on a refused handshake"
          | n -> read_exact (off + n)
      in
      read_exact 0;
      checkb "refusal hello is (magic, 0)" true
        (Bytes.get reply 0 = Proto.magic && Bytes.get reply 1 = '\000');
      (* the same connection must still serve, speaking v1 *)
      let req = { Service.default_request with protocol = Service.Exact; n = 60 } in
      let line = Jsonout.to_line (Service.request_to_json req) ^ "\n" in
      ignore (Unix.write_substring sock line 0 (String.length line));
      let inp = Unix.in_channel_of_descr sock in
      (match In_channel.input_line inp with
      | Some reply_line -> (
          match Result.bind (Jsonout.parse reply_line) Service.response_of_json with
          | Ok resp ->
              checkb "query after refused handshake reconciles" true
                (Wire.reconciles resp.Service.wire)
          | Error msg -> Alcotest.failf "connection unusable after refused handshake: %s" msg)
      | None -> Alcotest.fail "no reply after the refused handshake");
      Unix.close sock;
      match Service.client_stats ~path () with
      | Ok stats ->
          checki "refused handshake = one malformed error" 1 (stats_category stats "malformed");
          checki "one error total" 1 (stats_num stats "errors");
          checki "the query served as v1" 1 (stats_version stats 1 "served")
      | Error msg -> Alcotest.failf "stats query failed: %s" msg)

(* The binary batch reply decodes to the same per-item results as its JSON
   twin: responses equal record-for-record, failures failing the same
   items (a semantically bad request mixed in fails per item in both). *)
let test_binary_batch_matches_json () =
  let reqs =
    List.init 3 (fun i ->
        { Service.default_request with protocol = Service.Exact; n = 60; seed = i + 1 })
    @ [ { Service.default_request with protocol = Service.Exact; n = -5 } ]
  in
  (* the bad item serves nothing; 3 good items x both protocol passes *)
  with_forked_server ~tag:"batch-binary" ~expect_served:6 (fun path ->
      let run pref =
        match Service.client_batch ~protocol:pref ~path reqs with
        | Ok items -> items
        | Error msg -> Alcotest.failf "batch over %s failed: %s" (Proto.pref_to_string pref) msg
      in
      let v1 = run Proto.V1 and v2 = run Proto.V2 in
      checki "same item count" (List.length v1) (List.length v2);
      List.iter2
        (fun a b ->
          match (a, b) with
          | Ok ra, Ok rb -> checkb "binary batch item = JSON batch item" true (ra = rb)
          | Error _, Error _ -> ()
          | Ok _, Error msg -> Alcotest.failf "item ok over JSON, failed over binary: %s" msg
          | Error msg, Ok _ -> Alcotest.failf "item ok over binary, failed over JSON: %s" msg)
        v1 v2;
      checki "the bad item failed in both" 2
        (List.length (List.filter Result.is_error v1)
        + List.length (List.filter Result.is_error v2)))

(* Chaos over the version matrix: generated request-level fault schedules
   x {v1, v2} x {pipe, socketpair}.  Every served reply must carry the
   fault-free verdict (and match a local run of the same faulted request
   exactly); every abort must be a typed error; and which requests serve
   is deterministic, so the forked server's served count is asserted
   exactly.  Never a wrong verdict, never a hang. *)
let test_chaos_versions_matrix () =
  let schedules =
    QCheck.Gen.generate
      ~rand:(Random.State.make [| 20260809 |])
      ~n:5
      (Tfree_proptest.Fault_gen.gen ~max_ops:30 ~max_events:4 ())
  in
  let base = { Service.default_request with protocol = Service.Exact; n = 60 } in
  let clean = Service.run_request base in
  let cases =
    List.concat_map
      (fun sched ->
        List.map
          (fun transport -> { base with Service.fault = Fault.to_string sched; transport })
          [ Wire.Pipe; Wire.Socketpair ])
      schedules
  in
  (* the local, deterministic outcome of each faulted request *)
  let outcomes =
    List.map
      (fun req ->
        match Service.run_request req with
        | resp -> Some resp
        | exception Wire_error.Wire_error _ -> None)
      cases
  in
  let served_per_pass = List.length (List.filter Option.is_some outcomes) in
  with_forked_server ~tag:"chaos-versions" ~expect_served:(2 * served_per_pass) (fun path ->
      List.iter
        (fun pref ->
          List.iter2
            (fun req outcome ->
              match Service.client_query ~protocol:pref ~path req with
              | Ok resp -> (
                  checkb "served verdict = fault-free verdict" true
                    (resp.Service.verdict = clean.Service.verdict);
                  match outcome with
                  | Some local -> checkb "served reply = local faulted run" true (resp = local)
                  | None -> Alcotest.fail "server served a request that aborts locally")
              | Error msg -> (
                  match outcome with
                  | None -> checkb "typed error carries a message" true (msg <> "")
                  | Some _ ->
                      Alcotest.failf "server failed a request that serves locally: %s" msg))
            cases outcomes)
        [ Proto.V1; Proto.V2 ])

(* ------------------------------------------- handle_line categorization *)

let test_handle_line_categories () =
  let m = Metrics.create () in
  let stop = ref false in
  let fire line = fst (Service.handle_line ~metrics:m ~stop line) in
  let is_error reply cat =
    match Jsonout.parse reply with
    | Ok j ->
        Jsonout.member "ok" j = Some (Jsonout.Bool false)
        && Jsonout.member "category" j = Some (Jsonout.Str cat)
    | Error _ -> false
  in
  checkb "bad JSON -> malformed" true (is_error (fire "{nope") "malformed");
  checkb "unknown command -> malformed" true (is_error (fire "{\"cmd\": \"dance\"}") "malformed");
  checkb "unknown op -> unknown_op" true (is_error (fire "{\"op\": \"levitate\"}") "unknown_op");
  checkb "failing run -> run_failure" true (is_error (fire "{\"n\": -5}") "run_failure");
  checkb "injected wire fault -> transport" true
    (is_error (fire "{\"fault\": \"0:drop\", \"n\": 60, \"protocol\": \"exact\"}") "transport");
  checki "malformed count" 2 (Metrics.errors_in m Metrics.Malformed);
  checki "unknown_op count" 1 (Metrics.errors_in m Metrics.Unknown_op);
  checki "run_failure count" 1 (Metrics.errors_in m Metrics.Run_failure);
  checki "transport count" 1 (Metrics.errors_in m Metrics.Transport);
  checki "no query served" 0 (Metrics.queries_served m);
  checkb "shutdown untouched" true (not !stop)

(* {"op": "health"} over the v1 line protocol: a cheap scalar liveness
   payload — no verdict table, no histograms — that does not count as a
   served query. *)
let test_handle_line_health () =
  let m = Metrics.create () in
  let stop = ref false in
  let reply, _ = Service.handle_line ~metrics:m ~stop "{\"op\": \"health\"}" in
  let j =
    match Jsonout.parse reply with
    | Ok j -> j
    | Error msg -> Alcotest.failf "health reply does not parse: %s" msg
  in
  checkb "ok" true (Jsonout.member "ok" j = Some (Jsonout.Bool true));
  let h =
    match Jsonout.member "health" j with
    | Some h -> h
    | None -> Alcotest.fail "reply missing health member"
  in
  List.iter
    (fun k ->
      checkb (k ^ " present and numeric") true
        (match Jsonout.member k h with Some (Jsonout.Num _) -> true | _ -> false))
    [ "uptime_s"; "queries_served"; "errors"; "in_flight"; "accepted"; "shed" ];
  checkb "cache occupancy reported" true
    (match Jsonout.member "cache" h with
    | Some (Jsonout.Obj _) -> true
    | _ -> false);
  checkb "no verdict table walk" true (Jsonout.member "verdicts" h = None);
  checkb "no histograms" true (Jsonout.member "latency_us" h = None);
  checki "health is not a served query" 0 (Metrics.queries_served m);
  checki "health is not an error" 0 (Metrics.errors m);
  checkb "shutdown untouched" true (not !stop)

(* ---------------------------------------------------------------- metrics *)

let latency_field stats k =
  match Jsonout.member "latency_us" stats with
  | Some lat -> (
      match Jsonout.member k lat with
      | Some v -> v
      | None -> Alcotest.failf "latency_us missing %S" k)
  | None -> Alcotest.fail "stats missing latency_us"

let test_metrics_quantiles_empty () =
  let j = Metrics.to_json (Metrics.create ()) in
  List.iter
    (fun k -> checkb (k ^ " is null on an empty registry") true (latency_field j k = Jsonout.Null))
    [ "mean"; "p50"; "p90"; "p99" ];
  checkb "count 0" true (latency_field j "count" = Jsonout.Num 0.0);
  checki "no errors" 0 (stats_num j "errors")

let test_metrics_quantiles_single () =
  let m = Metrics.create () in
  Metrics.record_query m ~protocol:"exact" ~found_triangle:false ~wire_bytes:10 ~accounted_bits:42
    ~latency_us:123.0;
  let j = Metrics.to_json m in
  List.iter
    (fun k ->
      checkb (k ^ " is the sample on a single-sample registry") true
        (latency_field j k = Jsonout.Num 123.0))
    [ "mean"; "p50"; "p90"; "p99" ];
  checkb "count 1" true (latency_field j "count" = Jsonout.Num 1.0)

let test_metrics_categories () =
  let m = Metrics.create () in
  Metrics.record_error m ~category:Metrics.Malformed;
  Metrics.record_error m ~category:Metrics.Transport;
  Metrics.record_error m ~category:Metrics.Transport;
  Metrics.record_retry m;
  Metrics.record_injected m;
  checki "total is the category sum" 3 (Metrics.errors m);
  checki "malformed" 1 (Metrics.errors_in m Metrics.Malformed);
  checki "transport" 2 (Metrics.errors_in m Metrics.Transport);
  checki "unknown_op untouched" 0 (Metrics.errors_in m Metrics.Unknown_op);
  checki "retries" 1 (Metrics.retries m);
  checki "injected" 1 (Metrics.injected m);
  List.iter
    (fun c ->
      checkb
        (Metrics.category_name c ^ " name round-trips")
        true
        (Metrics.category_of_name (Metrics.category_name c) = Some c))
    Metrics.all_categories;
  checkb "unknown category name maps to None" true (Metrics.category_of_name "bogus" = None);
  checkb "empty category name maps to None" true (Metrics.category_of_name "" = None)

(* --------------------------------------------------------- fleet shard *)

(* Cheap deterministic request (exact protocol over a 60-vertex
   instance), keyed only by its seed. *)
let shard_req seed = { Service.default_request with protocol = Service.Exact; n = 60; seed }

(* The first [count] seeds at or after [from] whose requests land on
   [shard] of a [workers]-fleet. *)
let seeds_on_shard ~workers ~shard ~count from =
  let rec go s acc k =
    if k = 0 then List.rev acc
    else if s > from + 100_000 then
      Alcotest.failf "no %d seeds on shard %d/%d near %d" count shard workers from
    else if Service.shard_of_request ~workers (shard_req s) = shard then go (s + 1) (s :: acc) (k - 1)
    else go (s + 1) acc k
  in
  go from [] count

let seed_on_shard ~workers ~shard from =
  match seeds_on_shard ~workers ~shard ~count:1 from with
  | [ s ] -> s
  | _ -> assert false

(* The shard hash must be stable across processes, builds and runs — a
   fleet parent and a shard-routing client hash independently, and a
   deployed fleet's caches survive upgrades only if the function never
   moves.  Pinned reference values (FNV-1a over the documented canonical
   renderings) catch any accidental change to the constants or the
   rendering, on both key arms. *)
let test_shard_pinned_values () =
  checki "generated arm" 343342335
    (Service.shard_key (Service.key_of_request Service.default_request));
  checki "dataset arm" 1054919659
    (Service.shard_key
       (Service.key_of_dataset_request (Service.default_dataset_request ~name:"web")))

(* Near-uniformity over a seed sweep, both key arms: every shard of a
   4-fleet gets within a factor 2 of its fair share. *)
let test_shard_near_uniform () =
  let workers = 4 and total = 2000 in
  let spread tag shard_of =
    let counts = Array.make workers 0 in
    for s = 0 to total - 1 do
      let sh = shard_of s in
      counts.(sh) <- counts.(sh) + 1
    done;
    Array.iteri
      (fun i c ->
        checkb
          (Printf.sprintf "%s shard %d near-uniform (%d of %d)" tag i c total)
          true
          (c >= total / (2 * workers) && c <= 2 * total / workers))
      counts
  in
  spread "generated" (fun s -> Service.shard_of_request ~workers (shard_req s));
  spread "dataset" (fun s ->
      Service.shard_of_dataset_request ~workers
        { (Service.default_dataset_request ~name:"web") with Service.ds_seed = s })

let arb_instance_key =
  let open QCheck in
  let gen_family =
    Gen.oneofl
      [ Service.Far; Service.Free; Service.Hub; Service.Mu; Service.Gnp; Service.Behrend;
        Service.Diluted ]
  in
  let gen_part =
    Gen.oneofl [ Service.Disjoint; Service.Dup; Service.Replicate; Service.Skewed; Service.Hash ]
  in
  let gen_name =
    Gen.map
      (fun l -> String.init (1 + (List.length l mod 10)) (fun i ->
           Char.chr (Char.code 'a' + (List.nth l (i mod List.length l) mod 26))))
      (Gen.list_size (Gen.int_range 1 10) (Gen.int_range 0 25))
  in
  let gen_key =
    Gen.(bool >>= fun dataset ->
        if dataset then
          Gen.map3
            (fun key_name key_ds_partition (key_ds_k, key_ds_seed) ->
              Service.Key_dataset { key_name; key_ds_partition; key_ds_k; key_ds_seed })
            gen_name gen_part
            (Gen.pair (Gen.int_range 2 12) (Gen.int_range 0 1_000_000))
        else
          Gen.map3
            (fun (key_family, key_partition) (key_n, key_seed) (di, ei, key_k) ->
              Service.Key_generated
                {
                  key_family;
                  key_partition;
                  key_n;
                  key_d = float_of_int di /. 8.0;
                  key_k;
                  key_eps = float_of_int ei /. 64.0;
                  key_seed;
                })
            (Gen.pair gen_family gen_part)
            (Gen.pair (Gen.int_range 1 100_000) (Gen.int_range 0 1_000_000))
            (Gen.triple (Gen.int_range 1 400) (Gen.int_range 1 63) (Gen.int_range 2 12)))
  in
  make gen_key

let shard_qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"shard_key is deterministic and nonnegative" ~count:300 arb_instance_key
      (fun key -> Service.shard_key key >= 0 && Service.shard_key key = Service.shard_key key);
    Test.make ~name:"shard_of_key lands in range for every fleet size" ~count:300 arb_instance_key
      (fun key ->
        List.for_all
          (fun workers ->
            let s = Service.shard_of_key ~workers key in
            s >= 0
            && s < max workers 1
            && (workers > 1 || s = 0)
            && (workers <= 1 || s = Service.shard_key key mod workers))
          [ 1; 2; 3; 4; 7; 8; 16 ]);
  ]

(* ------------------------------------- fleet merge = single process *)

(* One fixed query stream, routed per-shard exactly as a fleet routes it:
   plain lines by their request's shard, batch lines grouped per shard
   (the load generator's grouping), plus a malformed line and an unknown
   op to exercise the error counters.  The single-process reference runs
   the very same lines through one registry. *)
let fleet_stream ~workers =
  let plain = List.init 12 (fun i -> shard_req (i mod 4)) in
  let plain_lines =
    List.map
      (fun r ->
        (Service.shard_of_request ~workers r, Jsonout.to_line (Service.request_to_json r)))
      plain
  in
  let batch = List.init 4 (fun i -> shard_req (20 + i)) in
  let by_shard = Hashtbl.create 4 in
  List.iter
    (fun r ->
      let sh = Service.shard_of_request ~workers r in
      Hashtbl.replace by_shard sh (r :: (try Hashtbl.find by_shard sh with Not_found -> [])))
    batch;
  let batch_lines =
    Hashtbl.fold
      (fun sh rs acc ->
        (sh, Jsonout.to_line (Service.batch_request_to_json (List.rev rs))) :: acc)
      by_shard []
    |> List.sort compare
  in
  plain_lines @ batch_lines @ [ (0, "{nope"); (1 mod workers, "{\"op\": \"levitate\"}") ]

let run_lines ~metrics ~cache lines =
  let stop = ref false in
  List.iter (fun line -> ignore (Service.handle_line ~cache ~metrics ~stop line)) lines

(* Per-worker registries of a sharded run, serialized through the ctl
   codec exactly as the fleet parent receives them (computed once). *)
let fleet_shard_snapshots =
  lazy
    (let workers = 3 in
     let stream = fleet_stream ~workers in
     let shards =
       Array.init workers (fun _ -> (Metrics.create (), Service.create_cache ~capacity:16 ()))
     in
     List.iter
       (fun (sh, line) ->
         let metrics, cache = shards.(sh) in
         run_lines ~metrics ~cache [ line ])
       stream;
     (stream, Array.map (fun (m, _) -> Metrics.to_wire m) shards))

let merge_snapshots ~order snapshots =
  let acc = Metrics.create ~started_at:0.0 () in
  Array.iter
    (fun i ->
      match Metrics.of_wire snapshots.(i) with
      | Ok m -> Metrics.merge acc m
      | Error e -> Alcotest.failf "worker snapshot does not round-trip: %s" e)
    order;
  acc

(* The fleet invariant behind {"op": "stats"}: per-worker registries,
   shipped over the ctl codec and merged, are indistinguishable from one
   single-process registry that served the same stream. *)
let test_fleet_merge_matches_single () =
  let stream, snapshots = Lazy.force fleet_shard_snapshots in
  let single = Metrics.create () in
  run_lines ~metrics:single ~cache:(Service.create_cache ~capacity:16 ()) (List.map snd stream);
  let acc = merge_snapshots ~order:(Array.init (Array.length snapshots) Fun.id) snapshots in
  checki "queries served" (Metrics.queries_served single) (Metrics.queries_served acc);
  checkb "stream served something" true (Metrics.queries_served acc > 0);
  checki "errors" (Metrics.errors single) (Metrics.errors acc);
  List.iter
    (fun c ->
      checki
        ("errors in " ^ Metrics.category_name c)
        (Metrics.errors_in single c) (Metrics.errors_in acc c))
    Metrics.all_categories;
  (* a distinct key lives on exactly one shard, so sharded caches hit and
     miss exactly as the single cache does *)
  checki "cache hits" (Metrics.cache_hits single) (Metrics.cache_hits acc);
  checki "cache misses" (Metrics.cache_misses single) (Metrics.cache_misses acc);
  checki "batches" (Metrics.batches single) (Metrics.batches acc);
  checki "batch items" (Metrics.batch_items single) (Metrics.batch_items acc);
  checki "wire bytes" (Metrics.wire_bytes single) (Metrics.wire_bytes acc);
  checki "accounted bits" (Metrics.accounted_bits single) (Metrics.accounted_bits acc);
  checki "v1 served gauge" (Metrics.version_served single 1) (Metrics.version_served acc 1);
  checki "latency samples"
    (stats_num (Metrics.to_json single) "queries_served")
    (stats_num (Metrics.to_json acc) "queries_served")

let fleet_merge_order_prop =
  QCheck.Test.make ~name:"fleet merge is order-independent" ~count:50 QCheck.(int_bound 1_000_000)
    (fun salt ->
      let _, snapshots = Lazy.force fleet_shard_snapshots in
      let workers = Array.length snapshots in
      let order = Array.init workers Fun.id in
      let rng = Rng.create (salt + 1) in
      for i = workers - 1 downto 1 do
        let j = Rng.int rng (i + 1) in
        let t = order.(i) in
        order.(i) <- order.(j);
        order.(j) <- t
      done;
      let reference = merge_snapshots ~order:(Array.init workers Fun.id) snapshots in
      let shuffled = merge_snapshots ~order snapshots in
      (* to_wire is a canonical rendering (sorted tables, exact histogram
         encodings), so byte equality is registry equality *)
      Metrics.to_wire shuffled = Metrics.to_wire reference)

(* ------------------------------------------------- fleet soak (forked) *)

module Snapshot = Tfree_dataset.Snapshot
module Dsreg = Tfree_dataset.Registry

(* A temp dataset registry holding one snapshot graph named "soak". *)
let with_fleet_registry f =
  let dir = Filename.temp_file "tfree_fleet_ds" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun x -> try Sys.remove (Filename.concat dir x) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let rng = Rng.create 42 in
      let g = Gen.gnp rng ~n:60 ~p:0.1 in
      Snapshot.save g (Filename.concat dir "soak.tfs");
      let reg = Dsreg.create ~dir () in
      Dsreg.add reg
        {
          Dsreg.name = "soak";
          path = "soak.tfs";
          format = Dsreg.Snapshot;
          n = Graph.n g;
          m = Graph.m g;
          gen = None;
        };
      f reg)

(* Fork a real fleet on a temp socket, await the public and every shard
   socket, run [f path] against it, shut the fleet down through the
   public socket and assert the supervisor saw exactly [expect_served]
   queries fleet-wide and exited cleanly. *)
let with_forked_fleet ?(fault = []) ?cache_capacity ?registry ~workers ~tag ~expect_served f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tfree-fleet-%s-%d.sock" tag (Unix.getpid ()))
  in
  let all_paths = path :: List.init workers (Service.worker_path ~path) in
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p) all_paths;
  match Unix.fork () with
  | 0 ->
      exit
        (if
           Service.serve ?cache_capacity ?registry ~line_timeout_s:5.0 ~fault ~workers ~path ()
           = expect_served
         then 0
         else 1)
  | server -> (
      let rec await tries =
        if not (List.for_all Sys.file_exists all_paths) then
          if tries = 0 then Alcotest.fail "fleet sockets never appeared"
          else (
            Unix.sleepf 0.05;
            await (tries - 1))
      in
      await 100;
      (match f path with
      | () -> ()
      | exception e ->
          (try Service.client_shutdown ~path () with _ -> ());
          ignore (Unix.waitpid [] server);
          raise e);
      let rec finish tries =
        (try Service.client_shutdown ~path () with Unix.Unix_error _ -> ());
        match Unix.waitpid [ Unix.WNOHANG ] server with
        | 0, _ ->
            if tries = 0 then begin
              Unix.kill server Sys.sigkill;
              ignore (Unix.waitpid [] server);
              Alcotest.fail "fleet did not exit after shutdown"
            end
            else begin
              Unix.sleepf 0.05;
              finish (tries - 1)
            end
        | _, Unix.WEXITED 0 -> ()
        | _ -> Alcotest.fail "fleet did not exit cleanly (or served a wrong fleet-wide count)"
      in
      finish 100)

let workers_member stats =
  match Jsonout.member "workers" stats with
  | Some w -> w
  | None -> Alcotest.fail "stats missing the fleet workers object"

let fleet_entries stats =
  match Option.bind (Jsonout.member "fleet" (workers_member stats)) Jsonout.to_list with
  | Some l -> l
  | None -> Alcotest.fail "workers object missing the fleet array"

(* Part A of the soak: a 2-worker fleet under chaos on worker 0, driven
   by sequential faulted queries, three concurrent client processes
   (v1, v2 and a batch) on worker 1's shard, a dataset query and a
   public-socket query.  Every verdict must equal the fault-free local
   run, and the fleet-wide stats must reconcile exactly: served =
   clean queries + faulted worker-0 attempts, two injected faults, zero
   errors, per-worker served gauges summing to the total — over v1 and
   v2 stats alike. *)
let test_fleet_chaos_reconciles () =
  with_fleet_registry (fun registry ->
      let workers = 2 in
      let fault =
        [ { Fault.op = 0; kind = Fault.Drop }; { Fault.op = 1; kind = Fault.Corrupt { bit = 9 } } ]
      in
      let s0 = seed_on_shard ~workers ~shard:0 100 in
      let shard1 = seeds_on_shard ~workers ~shard:1 ~count:9 200 in
      let dreq = Service.default_dataset_request ~name:"soak" in
      let dshard = Service.shard_of_dataset_request ~workers dreq in
      let expected_ds = Service.run_dataset_request ~registry dreq in
      let expected1 = Array.of_list (List.map (fun s -> Service.run_request (shard_req s)) shard1) in
      let pub_seed = 999 in
      (* 3 worker-0 attempts + 3 v1 + 3 v2 + 3 batch + 1 dataset + 1 public *)
      let expect_served = 3 + 9 + 1 + 1 in
      with_forked_fleet ~fault ~registry ~workers ~tag:"chaos" ~expect_served (fun path ->
          let w0 = Service.worker_path ~path 0 and w1 = Service.worker_path ~path 1 in
          (* sequential first: worker 0's reply stream is deterministic, so
             ops 0 and 1 of the schedule hit exactly this client *)
          let m = Metrics.create () in
          (match Service.client_query ~retries:3 ~backoff_s:0.01 ~metrics:m ~path:w0 (shard_req s0) with
          | Error msg -> Alcotest.failf "faulted query did not recover: %s" msg
          | Ok resp ->
              checkb "recovered verdict = fault-free verdict" true
                (resp = Service.run_request (shard_req s0));
              checki "exactly two retries spent" 2 (Metrics.retries m));
          (* concurrent clients on worker 1's shard: v1 lines, v2 frames,
             one batch exchange *)
          let seed_of c q = List.nth shard1 ((3 * c) + q) in
          let exp_of c q = expected1.((3 * c) + q) in
          let tallies =
            fork_clients 3 (fun c ->
                if c = 2 then
                  let reqs = List.init 3 (fun q -> shard_req (seed_of c q)) in
                  match Service.client_batch ~protocol:Proto.V2 ~path:w1 reqs with
                  | Error _ -> (1000, 0)
                  | Ok items ->
                      let wrong = ref 0 in
                      List.iteri
                        (fun q item ->
                          match item with
                          | Ok resp when resp = exp_of c q -> ()
                          | _ -> incr wrong)
                        items;
                      (!wrong, 0)
                else
                  let protocol = if c = 0 then Proto.V1 else Proto.V2 in
                  let wrong = ref 0 in
                  for q = 0 to 2 do
                    match Service.client_query ~protocol ~path:w1 (shard_req (seed_of c q)) with
                    | Ok resp when resp = exp_of c q -> ()
                    | _ -> incr wrong
                  done;
                  (!wrong, 0))
          in
          List.iteri
            (fun c (wrong, retries) ->
              checki (Printf.sprintf "client %d zero wrong verdicts" c) 0 wrong;
              checki (Printf.sprintf "client %d zero retries" c) 0 retries)
            tallies;
          (* dataset query, routed to its key's shard *)
          (match
             Service.client_dataset ~path:(Service.worker_path ~path dshard) dreq
           with
          | Ok resp -> checkb "dataset verdict = local run" true (resp = expected_ds)
          | Error msg -> Alcotest.failf "dataset query failed: %s" msg);
          (* public socket still serves (whichever worker accepts) *)
          (match Service.client_query ~path (shard_req pub_seed) with
          | Ok resp ->
              checkb "public-socket verdict = local run" true
                (resp = Service.run_request (shard_req pub_seed))
          | Error msg -> Alcotest.failf "public-socket query failed: %s" msg);
          (* fleet-wide reconciliation, over both stats protocols *)
          List.iter
            (fun protocol ->
              match Service.client_stats ~protocol ~path () with
              | Error msg -> Alcotest.failf "fleet stats failed: %s" msg
              | Ok stats ->
                  checki "fleet served = every attempt" expect_served
                    (stats_num stats "queries_served");
                  checki "two injected faults tallied" 2 (stats_num stats "injected_faults");
                  checki "zero errors" 0 (stats_num stats "errors");
                  (match Jsonout.member "batch" stats with
                  | Some b ->
                      checki "batch exchanges" 1 (stats_num b "batches");
                      checki "batch items" 3 (stats_num b "items")
                  | None -> Alcotest.fail "stats missing batch object");
                  let w = workers_member stats in
                  checki "worker count gauge" workers (stats_num w "count");
                  checki "no restarts" 0 (stats_num w "restarts");
                  let entries = fleet_entries stats in
                  checki "one gauge row per worker" workers (List.length entries);
                  let sum =
                    List.fold_left (fun acc e -> acc + stats_num e "served") 0 entries
                  in
                  checki "per-worker served gauges sum to the total" expect_served sum;
                  List.iter
                    (fun e ->
                      checkb "worker alive" true
                        (Jsonout.member "alive" e = Some (Jsonout.Bool true)))
                    entries)
            [ Proto.V1; Proto.V2 ];
          (* health is fleet-wide too *)
          match Service.client_health ~path:w1 () with
          | Ok h ->
              checki "fleet-wide health served count" expect_served
                (stats_num h "queries_served");
              ignore (workers_member h)
          | Error msg -> Alcotest.failf "fleet health failed: %s" msg))

(* Part B of the soak: SIGKILL a worker mid-fleet.  The supervisor must
   fold the dead seat's last snapshot into the graveyard, respawn the
   seat on the same inherited shard socket, and keep every fleet-wide
   counter monotone across the crash; the respawned worker serves its
   shard again and the final reconciliation is exact. *)
let test_fleet_kill_respawn () =
  let workers = 2 in
  let s0 = seed_on_shard ~workers ~shard:0 1000 in
  let s1 = seed_on_shard ~workers ~shard:1 1000 in
  let s0' = seed_on_shard ~workers ~shard:0 (s0 + 1) in
  let s1' = seed_on_shard ~workers ~shard:1 (s1 + 1) in
  with_forked_fleet ~workers ~tag:"respawn" ~expect_served:4 (fun path ->
      let w0 = Service.worker_path ~path 0 and w1 = Service.worker_path ~path 1 in
      let query sock seed =
        match Service.client_query ~path:sock (shard_req seed) with
        | Ok resp ->
            checkb "verdict = local run" true (resp = Service.run_request (shard_req seed))
        | Error msg -> Alcotest.failf "query failed: %s" msg
      in
      query w0 s0;
      query w1 s1;
      let stats () =
        (* asked on worker 0's shard socket: guaranteed-live answerer *)
        match Service.client_stats ~path:w0 () with
        | Ok s -> s
        | Error msg -> Alcotest.failf "fleet stats failed: %s" msg
      in
      let s = stats () in
      checki "two served before the kill" 2 (stats_num s "queries_served");
      let victim =
        match fleet_entries s with
        | [ _; e1 ] ->
            checkb "worker 1 alive before the kill" true
              (Jsonout.member "alive" e1 = Some (Jsonout.Bool true));
            stats_num e1 "pid"
        | _ -> Alcotest.fail "expected two fleet gauge rows"
      in
      Unix.kill victim Sys.sigkill;
      (* await the respawn; counters must never go backwards while the
         seat is empty (the stats barrier rides the graveyard fold) *)
      let rec await tries prev =
        if tries = 0 then Alcotest.fail "worker 1 was not respawned"
        else
          let s = stats () in
          let served = stats_num s "queries_served" in
          checkb "served counter is monotone across the crash" true (served >= prev);
          let e1 = List.nth (fleet_entries s) 1 in
          if
            Jsonout.member "alive" e1 = Some (Jsonout.Bool true)
            && stats_num e1 "pid" <> victim
          then begin
            checki "restart gauge counted the respawn" 1
              (stats_num (workers_member s) "restarts");
            checki "restart gauge on the seat" 1 (stats_num e1 "restarts");
            served
          end
          else begin
            Unix.sleepf 0.1;
            await (tries - 1) served
          end
      in
      let served_after = await 100 2 in
      checki "no query lost in the graveyard fold" 2 served_after;
      (* the respawned seat serves its shard on the inherited socket *)
      query w0 s0';
      query w1 s1';
      let s = stats () in
      checki "exact final reconciliation" 4 (stats_num s "queries_served");
      checki "a crash is not a service error" 0 (stats_num s "errors"))

(* --------------------------------------------------------------- QCheck *)

let qcheck_props =
  let open QCheck in
  let arb = Tfree_proptest.Msg_gen.arbitrary in
  [
    Test.make ~name:"codec round-trip on random messages" ~count:500 arb (fun msg ->
        let payload, bits = Codec.encode_payload msg in
        let back = Codec.decode_payload (Msg.layout msg) ~bits payload in
        Msg.value back = Msg.value msg && Msg.bits back = Msg.bits msg);
    Test.make ~name:"encoded payload length = Msg.bits" ~count:500 arb (fun msg ->
        let payload, bits = Codec.encode_payload msg in
        bits = Msg.bits msg && Bytes.length payload = (bits + 7) / 8);
    Test.make ~name:"frame round-trip and overhead accounting" ~count:200 arb (fun msg ->
        let frame = Frame.encode msg in
        let pos = ref 0 in
        let back = Frame.decode frame pos in
        Msg.value back = Msg.value msg
        && !pos = Bytes.length frame
        && Frame.overhead_bits ~frame_bytes:(Bytes.length frame) ~payload_bits:(Msg.bits msg) > 0);
  ]

(* The chaos property (the wire's one-sidedness): under ANY fault schedule,
   every protocol on every loopback transport either completes with exactly
   its fault-free verdict or aborts with a typed Wire_error — never a wrong
   verdict, never a hang (a hang would wedge the whole suite).  Schedules
   shrink to a minimal breaking spec, printed in --fault-spec grammar. *)
let chaos_qcheck_prop =
  let k = 4 in
  let rng = Rng.create 777 in
  let g = Gen.far_with_degree rng ~n:120 ~d:4.0 ~eps:0.1 in
  let parts = Partition.with_duplication rng ~k ~dup_p:0.3 g in
  let protos = protocols ~davg:(Graph.avg_degree g) in
  let bases = List.map (fun (name, (run : proto_run)) -> (name, run ~seed:4 parts)) protos in
  QCheck.Test.make ~name:"chaos: any schedule yields the fault-free verdict or a typed error"
    ~count:30
    (Tfree_proptest.Fault_gen.arb_fault_schedule ~max_ops:40 ~max_events:5 ())
    (fun sched ->
      List.for_all
        (fun transport ->
          List.for_all2
            (fun (_, (run : proto_run)) (_, base) ->
              let net = Wire.create ~fault:sched ~transport ~k () in
              let ok =
                match run ~tap:(Wire.tap net) ~seed:4 parts with
                | wired -> wired.Tfree.Tester.verdict = base.Tfree.Tester.verdict
                | exception Wire_error.Wire_error _ -> true
              in
              Wire.close net;
              ok)
            protos bases)
        [ Wire.Pipe; Wire.Socketpair ])

let () =
  Alcotest.run "tfree_wire"
    [
      ( "bitio",
        [
          Alcotest.test_case "round-trip" `Quick test_bitio_roundtrip;
          Alcotest.test_case "range checks" `Quick test_bitio_range_checks;
        ] );
      ( "codec",
        [
          Alcotest.test_case "every constructor" `Quick test_codec_every_constructor;
          Alcotest.test_case "layout descriptor" `Quick test_layout_descriptor_roundtrip;
        ] );
      ( "frame",
        [
          Alcotest.test_case "buffer round-trip" `Quick test_frame_buffer_roundtrip;
          Alcotest.test_case "over pipe" `Quick test_frame_over_pipe;
          Alcotest.test_case "over socketpair" `Quick test_frame_over_socketpair;
          Alcotest.test_case "large frame no deadlock" `Quick test_exchange_large_frame_socketpair;
        ] );
      ( "frame-hardening",
        [
          Alcotest.test_case "truncated varint" `Quick test_frame_truncated_varint;
          Alcotest.test_case "length larger than buffer" `Quick test_frame_length_larger_than_buffer;
          Alcotest.test_case "zero-length frame" `Quick test_frame_zero_length;
          Alcotest.test_case "garbage layout descriptor" `Quick test_frame_garbage_layout;
          Alcotest.test_case "payload bit-count mismatch" `Quick test_frame_bit_count_mismatch;
          Alcotest.test_case "checksum catches every body bit-flip" `Quick
            test_frame_checksum_catches_every_body_flip;
        ] );
      ( "fault",
        [
          Alcotest.test_case "spec round-trip" `Quick test_fault_spec_roundtrip;
          Alcotest.test_case "seeded determinism" `Quick test_fault_seeded_deterministic;
          Alcotest.test_case "chaos matrix, pipe" `Quick (chaos_matrix Wire.Pipe);
          Alcotest.test_case "chaos matrix, socketpair" `Quick (chaos_matrix Wire.Socketpair);
        ] );
      ( "parity",
        [
          Alcotest.test_case "pipe transport" `Quick (parity_suite Wire.Pipe);
          Alcotest.test_case "socketpair transport" `Quick (parity_suite Wire.Socketpair);
          Alcotest.test_case "blackboard mode" `Quick test_parity_blackboard;
          Alcotest.test_case "runtime surface" `Quick test_wire_runtime_surface;
        ] );
      ( "composition",
        [
          Alcotest.test_case "coordinator, model" `Quick (composition_suite Runtime.Coordinator None);
          Alcotest.test_case "coordinator, pipe" `Quick
            (composition_suite Runtime.Coordinator (Some Wire.Pipe));
          Alcotest.test_case "coordinator, socketpair" `Quick
            (composition_suite Runtime.Coordinator (Some Wire.Socketpair));
          Alcotest.test_case "blackboard, model" `Quick (composition_suite Runtime.Blackboard None);
          Alcotest.test_case "blackboard, pipe" `Quick
            (composition_suite Runtime.Blackboard (Some Wire.Pipe));
          Alcotest.test_case "blackboard, socketpair" `Quick
            (composition_suite Runtime.Blackboard (Some Wire.Socketpair));
        ] );
      ( "service",
        [
          Alcotest.test_case "request JSON round-trip" `Quick test_service_request_json_roundtrip;
          Alcotest.test_case "request defaults" `Quick test_service_request_defaults;
          Alcotest.test_case "rejects unknown enum" `Quick test_service_request_rejects_unknown;
          Alcotest.test_case "run_request reconciles" `Quick test_service_run_request_reconciles;
          Alcotest.test_case "handle_line categories" `Quick test_handle_line_categories;
          Alcotest.test_case "health over v1" `Quick test_handle_line_health;
        ] );
      ( "proto",
        [
          Alcotest.test_case "read buffer shrinks after a large burst" `Quick
            test_proto_rbuf_shrinks;
        ] );
      ( "negotiation",
        [
          Alcotest.test_case "v2 client, v1-capped server" `Quick
            test_negotiation_v2_client_v1_server;
          Alcotest.test_case "v1 client, v2 server" `Quick test_negotiation_v1_client_v2_server;
          Alcotest.test_case "v2 both sides, exact byte gauge" `Quick
            test_negotiation_v2_v2_exact_bytes;
          Alcotest.test_case "garbage version byte keeps connection" `Quick
            test_negotiation_garbage_version_byte;
          Alcotest.test_case "binary batch = JSON batch" `Quick test_binary_batch_matches_json;
          Alcotest.test_case "chaos schedules x versions x transports" `Quick
            test_chaos_versions_matrix;
        ] );
      ( "serve-resilience",
        [
          Alcotest.test_case "malformed line keeps connection" `Quick
            test_service_malformed_line_keeps_connection;
          Alcotest.test_case "client killed mid-request" `Quick
            test_service_client_killed_mid_request;
          Alcotest.test_case "client retry recovers through faults" `Quick
            test_service_client_retry_recovers;
        ] );
      ( "serve-concurrency",
        [
          Alcotest.test_case "interleaved clients, no head-of-line blocking" `Quick
            test_concurrent_clients_interleaved;
          Alcotest.test_case "batch = one-at-a-time queries" `Quick
            test_batch_matches_single_queries;
          Alcotest.test_case "cache hits reconcile in stats" `Quick
            test_cache_hits_reconcile_in_stats;
          Alcotest.test_case "chaos schedule spares other clients" `Quick
            test_chaos_schedule_spares_other_clients;
          Alcotest.test_case "overload sheds with typed error" `Quick
            test_overload_sheds_with_typed_error;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "quantiles on empty registry" `Quick test_metrics_quantiles_empty;
          Alcotest.test_case "quantiles on single sample" `Quick test_metrics_quantiles_single;
          Alcotest.test_case "error categories" `Quick test_metrics_categories;
        ] );
      ( "fleet-shard",
        [
          Alcotest.test_case "pinned hash values" `Quick test_shard_pinned_values;
          Alcotest.test_case "near-uniform over both key arms" `Quick test_shard_near_uniform;
          Alcotest.test_case "merged workers = single process" `Quick
            test_fleet_merge_matches_single;
        ] );
      ( "fleet-soak",
        [
          Alcotest.test_case "chaos on worker 0 reconciles exactly" `Quick
            test_fleet_chaos_reconciles;
          Alcotest.test_case "SIGKILL a worker: respawn, monotone counters" `Quick
            test_fleet_kill_respawn;
        ] );
      ( "qcheck",
        List.map QCheck_alcotest.to_alcotest
          (qcheck_props @ shard_qcheck_props @ [ fleet_merge_order_prop; chaos_qcheck_prop ]) );
    ]
