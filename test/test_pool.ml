(* Tests for the domain pool and for the CSR triangle kernels against
   straightforward reference implementations.

   The pool's contract is that parallel execution is observationally identical
   to sequential: same results, same order, exceptions re-raised.  The [?jobs]
   argument is passed explicitly here so the tests exercise true multi-domain
   execution even on hosts where the hardware cap would clamp the pool to one
   worker. *)

open Tfree_util
open Tfree_graph

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ----------------------------------------------------------------- pool *)

let test_parallel_init_matches_array_init () =
  let f i = (i * 7919) mod 1024 in
  Alcotest.(check (array int)) "jobs=4" (Array.init 1000 f) (Pool.parallel_init ~jobs:4 1000 f);
  Alcotest.(check (array int)) "jobs=1" (Array.init 1000 f) (Pool.parallel_init ~jobs:1 1000 f);
  Alcotest.(check (array int)) "empty" [||] (Pool.parallel_init ~jobs:4 0 f)

let test_parallel_map_matches_list_map () =
  let xs = List.init 257 (fun i -> i - 128) in
  let f x = (x * x) + x in
  Alcotest.(check (list int)) "jobs=4" (List.map f xs) (Pool.parallel_map ~jobs:4 f xs);
  Alcotest.(check (list int)) "jobs=1" (List.map f xs) (Pool.parallel_map ~jobs:1 f xs)

let test_parallel_init_allocating_cells () =
  (* Cells that allocate (the realistic harness shape: fresh rng + graph per
     cell) must still come back deterministic and in index order. *)
  let cell i =
    let rng = Rng.create (914_771 * (i + 1)) in
    let g = Gen.gnp rng ~n:40 ~p:0.15 in
    (Graph.m g, Triangle.count g)
  in
  let seq = Array.init 64 cell in
  let par = Pool.parallel_init ~jobs:4 64 cell in
  checkb "identical" true (seq = par)

let test_parallel_init_exception_propagates () =
  Alcotest.check_raises "re-raised" (Failure "boom") (fun () ->
      ignore (Pool.parallel_init ~jobs:4 100 (fun i -> if i = 37 then failwith "boom" else i)))

let test_nested_calls_fall_back_sequential () =
  (* A cell that itself calls the pool must not deadlock: inner calls detect
     they are on a worker domain and run sequentially. *)
  let outer =
    Pool.parallel_init ~jobs:4 8 (fun i ->
        Array.fold_left ( + ) 0 (Pool.parallel_init 16 (fun j -> (i * 16) + j)))
  in
  let expect = Array.init 8 (fun i -> Array.fold_left ( + ) 0 (Array.init 16 (fun j -> (i * 16) + j))) in
  Alcotest.(check (array int)) "nested" expect outer

let test_jobs_clamped () =
  checkb "at least one" true (Pool.jobs () >= 1);
  Pool.set_jobs 0;
  checkb "clamped below" true (Pool.jobs () >= 1);
  Pool.set_jobs 1000;
  checkb "clamped above" true (Pool.jobs () <= 64);
  Pool.set_jobs 1

(* -------------------------------- reference triangle kernels (pre-CSR) *)

(* The straightforward forward algorithm the CSR kernels replaced: rank by a
   comparison sort on (degree, id), filter each sorted adjacency into a
   higher-rank out-neighbour array, intersect.  Enumeration order is the
   contract — ascending u, ascending v within u, ascending common neighbour —
   so order-sensitive consumers (greedy_packing) must agree exactly. *)
let ref_iter g f =
  let n = Graph.n g in
  let order =
    List.sort
      (fun u v -> compare (Graph.degree g u, u) (Graph.degree g v, v))
      (List.init n (fun v -> v))
  in
  let rank = Array.make (max 1 n) 0 in
  List.iteri (fun i v -> rank.(v) <- i) order;
  let out =
    Array.init n (fun v ->
        Array.of_list
          (List.filter (fun u -> rank.(u) > rank.(v)) (Array.to_list (Graph.neighbors g v))))
  in
  for u = 0 to n - 1 do
    Array.iter
      (fun v ->
        let a = out.(u) and b = out.(v) in
        let p = ref 0 and q = ref 0 in
        while !p < Array.length a && !q < Array.length b do
          if a.(!p) = b.(!q) then begin
            f u v a.(!p);
            incr p;
            incr q
          end
          else if a.(!p) < b.(!q) then incr p
          else incr q
        done)
      out.(u)
  done

let ref_enumerate g =
  let acc = ref [] in
  ref_iter g (fun a b c -> acc := Triangle.normalize (a, b, c) :: !acc);
  List.rev !acc

let ref_count g = List.length (ref_enumerate g)

let ref_find g = match ref_enumerate g with [] -> None | t :: _ -> Some t

let ref_greedy_packing g =
  let used : (Graph.edge, unit) Hashtbl.t = Hashtbl.create 64 in
  let free e = not (Hashtbl.mem used e) in
  let acc = ref [] in
  ref_iter g (fun a b c ->
      let e1 = Graph.normalize_edge (a, b)
      and e2 = Graph.normalize_edge (b, c)
      and e3 = Graph.normalize_edge (a, c) in
      if free e1 && free e2 && free e3 then begin
        Hashtbl.replace used e1 ();
        Hashtbl.replace used e2 ();
        Hashtbl.replace used e3 ();
        acc := Triangle.normalize (a, b, c) :: !acc
      end);
  List.rev !acc

let test_iter_until_stops_early () =
  let g = Gen.complete ~n:8 in
  let calls = ref 0 in
  let stopped =
    Triangle.iter_until g (fun _ _ _ ->
        incr calls;
        true)
  in
  checkb "stopped" true stopped;
  checki "single callback" 1 !calls;
  let free = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  checkb "no stop on free" false (Triangle.iter_until free (fun _ _ _ -> true))

let test_find_early_exit_agrees () =
  let rng = Rng.create 97 in
  let g = Gen.far_with_degree rng ~n:120 ~d:6.0 ~eps:0.05 in
  checkb "find = reference find" true (Triangle.find g = ref_find g)

(* --------------------------------------------------------------- QCheck *)

let graph_gen =
  QCheck.Gen.(
    int_range 2 60 >>= fun n ->
    int_range 0 10_000 >|= fun seed ->
    let rng = Rng.create seed in
    Gen.gnp rng ~n ~p:0.2)

let arb_graph = QCheck.make ~print:(fun g -> Format.asprintf "%a" Graph.pp g) graph_gen

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"parallel_map jobs=4 = List.map" ~count:50
      (pair (list small_int) (int_range 1 100))
      (fun (xs, salt) ->
        let f x = (x * salt) + (x mod 7) in
        Pool.parallel_map ~jobs:4 f xs = List.map f xs);
    Test.make ~name:"parallel_init jobs=3 = Array.init" ~count:50
      (pair (int_range 0 500) (int_range 1 100))
      (fun (n, salt) ->
        let f i = i * salt in
        Pool.parallel_init ~jobs:3 n f = Array.init n f);
    Test.make ~name:"count = reference count" ~count:100 arb_graph (fun g ->
        Triangle.count g = ref_count g);
    Test.make ~name:"enumerate = reference enumerate" ~count:100 arb_graph (fun g ->
        Triangle.enumerate g = ref_enumerate g);
    Test.make ~name:"find = reference find" ~count:100 arb_graph (fun g ->
        Triangle.find g = ref_find g);
    Test.make ~name:"greedy_packing = reference (order-sensitive)" ~count:100 arb_graph (fun g ->
        Triangle.greedy_packing g = ref_greedy_packing g);
    Test.make ~name:"of_edges = naive membership" ~count:100
      (pair (int_range 2 30) (list (pair (int_range 0 29) (int_range 0 29))))
      (fun (n, raw) ->
        let edges = List.filter (fun (u, v) -> u < n && v < n) raw in
        let g = Graph.of_edges ~n edges in
        let set =
          List.sort_uniq compare
            (List.filter_map
               (fun (u, v) -> if u = v then None else Some (Graph.normalize_edge (u, v)))
               edges)
        in
        Graph.edges g = set
        && List.for_all (fun (u, v) -> Graph.mem_edge g u v && Graph.mem_edge g v u) set
        && Graph.m g = List.length set);
    Test.make ~name:"union = of_edges on concatenated edges" ~count:100 (pair arb_graph arb_graph)
      (fun (g1, g2) ->
        let n = max (Graph.n g1) (Graph.n g2) in
        let lift g = Graph.of_edges ~n (Graph.edges g) in
        let g1 = lift g1 and g2 = lift g2 in
        Graph.equal (Graph.union g1 g2) (Graph.of_edges ~n (Graph.edges g1 @ Graph.edges g2)));
  ]

(* ------------------------------------------------- harness determinism *)

(* Render a real experiment's tables under two job settings and require the
   strings to be byte-identical — the end-to-end determinism guarantee the
   docs advertise.  On single-core hosts both settings clamp to one worker
   and the check is trivially true; on multicore it exercises the full
   parallel path. *)
let test_harness_tables_jobs_invariant () =
  let entry =
    match Tfree_experiments.Registry.find "table1/sim-low" with
    | Some e -> e
    | None -> Alcotest.fail "table1/sim-low not registered"
  in
  let render () =
    String.concat ""
      (List.map Table.render (Tfree_experiments.Registry.run ~scale:Tfree_experiments.Common.Small entry))
  in
  Pool.set_jobs 1;
  let seq = render () in
  Pool.set_jobs 4;
  let par = render () in
  Pool.set_jobs 1;
  Alcotest.(check string) "tables identical across job counts" seq par

let () =
  Alcotest.run "tfree_pool"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel_init = Array.init" `Quick test_parallel_init_matches_array_init;
          Alcotest.test_case "parallel_map = List.map" `Quick test_parallel_map_matches_list_map;
          Alcotest.test_case "allocating cells deterministic" `Quick test_parallel_init_allocating_cells;
          Alcotest.test_case "exception propagates" `Quick test_parallel_init_exception_propagates;
          Alcotest.test_case "nested falls back" `Quick test_nested_calls_fall_back_sequential;
          Alcotest.test_case "jobs clamped" `Quick test_jobs_clamped;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "iter_until stops early" `Quick test_iter_until_stops_early;
          Alcotest.test_case "find early-exit agrees" `Quick test_find_early_exit_agrees;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_props);
      ( "harness",
        [ Alcotest.test_case "tables invariant under jobs" `Slow test_harness_tables_jobs_invariant ] );
    ]
