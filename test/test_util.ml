(* Tests for Tfree_util: PRNG, sampling, bit accounting, statistics. *)

open Tfree_util

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ Rng *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 7 and b = Rng.create 8 in
  checkb "different seeds diverge" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_split_independent_of_parent_advance () =
  (* split depends only on current state: same state + key -> same child. *)
  let a = Rng.create 7 in
  let c1 = Rng.split a 3 and c2 = Rng.split a 3 in
  check Alcotest.int64 "split is pure" (Rng.next_int64 c1) (Rng.next_int64 c2)

let test_rng_split_key_sensitivity () =
  let a = Rng.create 7 in
  let c1 = Rng.split a 3 and c2 = Rng.split a 4 in
  checkb "different keys diverge" true (Rng.next_int64 c1 <> Rng.next_int64 c2)

let test_rng_int_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_nonpositive () =
  let r = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_rng_float_range () =
  let r = Rng.create 2 in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    checkb "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_float_mean () =
  let r = Rng.create 3 in
  let xs = List.init 20_000 (fun _ -> Rng.float r) in
  let m = Stats.mean xs in
  checkb "mean near 1/2" true (Float.abs (m -. 0.5) < 0.02)

let test_rng_bool_probability () =
  let r = Rng.create 4 in
  let hits = List.length (List.filter (fun x -> x) (List.init 20_000 (fun _ -> Rng.bool r ~p:0.3))) in
  checkb "p=0.3 respected" true (abs (hits - 6000) < 400)

let test_rng_hash_float_deterministic () =
  let r = Rng.create 5 in
  check (Alcotest.float 0.0) "same key same hash" (Rng.hash_float r 42) (Rng.hash_float r 42)

let test_rng_hash_float_spread () =
  let r = Rng.create 5 in
  let xs = List.init 10_000 (fun i -> Rng.hash_float r i) in
  checkb "mean near 1/2" true (Float.abs (Stats.mean xs -. 0.5) < 0.02)

let test_rng_hash_float2_symmetry_breaking () =
  let r = Rng.create 6 in
  checkb "pair order matters" true (Rng.hash_float2 r 1 2 <> Rng.hash_float2 r 2 1)

let test_rng_geometric_zero_p_one () =
  let r = Rng.create 7 in
  checki "p=1 gives 0" 0 (Rng.geometric r ~p:1.0)

let test_rng_geometric_mean () =
  let r = Rng.create 8 in
  let p = 0.2 in
  let xs = List.init 20_000 (fun _ -> float_of_int (Rng.geometric r ~p)) in
  (* mean of failures before success = (1-p)/p = 4 *)
  checkb "geometric mean" true (Float.abs (Stats.mean xs -. 4.0) < 0.25)

let test_rng_copy_isolated () =
  let a = Rng.create 9 in
  let b = Rng.copy a in
  ignore (Rng.next_int64 a);
  ignore (Rng.next_int64 a);
  let b1 = Rng.next_int64 b in
  let a' = Rng.create 9 in
  check Alcotest.int64 "copy preserved original state" (Rng.next_int64 a') b1

(* ------------------------------------------------------------- Sampling *)

let test_bernoulli_subset_extremes () =
  let r = Rng.create 1 in
  checki "p=0 empty" 0 (List.length (Sampling.bernoulli_subset r 100 ~p:0.0));
  checki "p=1 full" 100 (List.length (Sampling.bernoulli_subset r 100 ~p:1.0))

let test_bernoulli_subset_sorted_distinct () =
  let r = Rng.create 2 in
  let s = Sampling.bernoulli_subset r 1000 ~p:0.3 in
  checkb "sorted" true (List.sort compare s = s);
  checki "distinct" (List.length s) (List.length (List.sort_uniq compare s))

let test_bernoulli_subset_size () =
  let r = Rng.create 3 in
  let sizes =
    List.init 200 (fun _ -> float_of_int (List.length (Sampling.bernoulli_subset r 1000 ~p:0.25)))
  in
  checkb "expected size" true (Float.abs (Stats.mean sizes -. 250.0) < 10.0)

let test_without_replacement_basic () =
  let r = Rng.create 4 in
  let s = Sampling.without_replacement r 50 20 in
  checki "size" 20 (List.length s);
  checki "distinct" 20 (List.length (List.sort_uniq compare s));
  List.iter (fun v -> checkb "in range" true (v >= 0 && v < 50)) s

let test_without_replacement_all () =
  let r = Rng.create 5 in
  let s = Sampling.without_replacement r 10 10 in
  Alcotest.(check (list int)) "whole range" (List.init 10 (fun i -> i)) s

let test_without_replacement_too_many () =
  let r = Rng.create 5 in
  Alcotest.check_raises "m > n" (Invalid_argument "Sampling.without_replacement: m > n") (fun () ->
      ignore (Sampling.without_replacement r 3 4))

let test_without_replacement_uniform () =
  (* Each element appears with probability m/n. *)
  let r = Rng.create 6 in
  let counts = Array.make 10 0 in
  for _ = 1 to 5000 do
    List.iter (fun v -> counts.(v) <- counts.(v) + 1) (Sampling.without_replacement r 10 3)
  done;
  Array.iter (fun c -> checkb "near 1500" true (abs (c - 1500) < 200)) counts

let test_shuffle_permutation () =
  let r = Rng.create 7 in
  let l = List.init 30 (fun i -> i) in
  let s = Sampling.shuffle r l in
  Alcotest.(check (list int)) "same multiset" l (List.sort compare s)

let test_choose_member () =
  let r = Rng.create 8 in
  for _ = 1 to 100 do
    checkb "member" true (List.mem (Sampling.choose r [ 1; 5; 9 ]) [ 1; 5; 9 ])
  done

let test_choose_empty () =
  let r = Rng.create 8 in
  Alcotest.check_raises "empty" (Invalid_argument "Sampling.choose: empty list") (fun () ->
      ignore (Sampling.choose r []))

let test_reservoir_short_input () =
  let r = Rng.create 9 in
  let got = Sampling.reservoir r 10 (List.to_seq [ 1; 2; 3 ]) in
  Alcotest.(check (list int)) "keeps everything" [ 1; 2; 3 ] got

let test_reservoir_size_and_membership () =
  let r = Rng.create 10 in
  let got = Sampling.reservoir r 5 (Seq.init 100 (fun i -> i)) in
  checki "size" 5 (List.length got);
  List.iter (fun v -> checkb "member" true (v >= 0 && v < 100)) got

let test_reservoir_uniform () =
  let r = Rng.create 11 in
  let counts = Array.make 20 0 in
  for _ = 1 to 4000 do
    List.iter (fun v -> counts.(v) <- counts.(v) + 1) (Sampling.reservoir r 4 (Seq.init 20 (fun i -> i)))
  done;
  (* each element kept w.p. 4/20 = 1/5 -> 800 expected *)
  Array.iter (fun c -> checkb "near 800" true (abs (c - 800) < 150)) counts

let test_binomial_bounds_and_mean () =
  let r = Rng.create 12 in
  let xs = List.init 3000 (fun _ -> Sampling.binomial r ~n:40 ~p:0.25) in
  List.iter (fun x -> checkb "bounds" true (x >= 0 && x <= 40)) xs;
  checkb "mean near 10" true (Float.abs (Stats.mean (List.map float_of_int xs) -. 10.0) < 0.5)

(* ----------------------------------------------------------------- Bits *)

let test_bits_for_card () =
  checki "card 1" 1 (Bits.for_card 1);
  checki "card 2" 1 (Bits.for_card 2);
  checki "card 3" 2 (Bits.for_card 3);
  checki "card 4" 2 (Bits.for_card 4);
  checki "card 5" 3 (Bits.for_card 5);
  checki "card 1024" 10 (Bits.for_card 1024);
  checki "card 1025" 11 (Bits.for_card 1025)

let test_bits_vertex_edge () =
  checki "vertex of 1000" 10 (Bits.vertex ~n:1000);
  checki "edge is twice vertex" (2 * Bits.vertex ~n:1000) (Bits.edge ~n:1000)

let test_bits_int_in_range () =
  checki "range [0,0]" 1 (Bits.int_in_range ~lo:0 ~hi:0);
  checki "range [0,255]" 8 (Bits.int_in_range ~lo:0 ~hi:255);
  checki "range [-1,62]" 6 (Bits.int_in_range ~lo:(-1) ~hi:62)

let test_bits_int_in_range_invalid () =
  Alcotest.check_raises "hi < lo" (Invalid_argument "Bits.int_in_range: hi < lo") (fun () ->
      ignore (Bits.int_in_range ~lo:3 ~hi:2))

let test_bits_elias_gamma () =
  checki "0" 1 (Bits.elias_gamma 0);
  checki "1" 3 (Bits.elias_gamma 1);
  checki "2" 3 (Bits.elias_gamma 2);
  checki "3" 5 (Bits.elias_gamma 3);
  checki "7" 7 (Bits.elias_gamma 7)

let test_bits_log2 () =
  checkb "log2 8 = 3" true (Float.abs (Bits.log2 8.0 -. 3.0) < 1e-9)

(* ---------------------------------------------------------------- Stats *)

let test_stats_mean_variance () =
  checkb "mean" true (Float.abs (Stats.mean [ 1.0; 2.0; 3.0 ] -. 2.0) < 1e-9);
  checkb "variance" true (Float.abs (Stats.variance [ 1.0; 2.0; 3.0 ] -. 1.0) < 1e-9);
  checkb "stddev" true (Float.abs (Stats.stddev [ 1.0; 2.0; 3.0 ] -. 1.0) < 1e-9)

let test_stats_empty_mean_nan () = checkb "nan" true (Float.is_nan (Stats.mean []))

let test_stats_quantiles () =
  let xs = [ 4.0; 1.0; 3.0; 2.0 ] in
  checkb "median" true (Float.abs (Stats.median xs -. 2.5) < 1e-9);
  checkb "q0" true (Float.abs (Stats.quantile 0.0 xs -. 1.0) < 1e-9);
  checkb "q1" true (Float.abs (Stats.quantile 1.0 xs -. 4.0) < 1e-9)

let test_stats_quantile_edges () =
  checkb "empty list is nan" true (Float.is_nan (Stats.quantile 0.5 []));
  List.iter
    (fun q ->
      checkb (Printf.sprintf "single sample at q=%.2f" q) true (Stats.quantile q [ 9.0 ] = 9.0))
    [ 0.0; 0.25; 1.0 ];
  (* input order must not matter: quantile sorts internally *)
  let sorted = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] and shuffled = [ 3.0; 5.0; 1.0; 4.0; 2.0 ] in
  List.iter
    (fun q ->
      checkb
        (Printf.sprintf "order-independent at q=%.2f" q)
        true
        (Stats.quantile q sorted = Stats.quantile q shuffled))
    [ 0.0; 0.3; 0.5; 0.9; 1.0 ];
  (* out-of-range q clamps to the extremes *)
  checkb "q < 0 clamps to min" true (Stats.quantile (-1.0) sorted = 1.0);
  checkb "q > 1 clamps to max" true (Stats.quantile 2.0 sorted = 5.0)

let test_stats_linear_fit_exact () =
  let pts = List.map (fun x -> (x, (3.0 *. x) +. 1.0)) [ 0.0; 1.0; 2.0; 5.0 ] in
  let f = Stats.linear_fit pts in
  checkb "slope" true (Float.abs (f.Stats.slope -. 3.0) < 1e-9);
  checkb "intercept" true (Float.abs (f.Stats.intercept -. 1.0) < 1e-9);
  checkb "r2" true (Float.abs (f.Stats.r2 -. 1.0) < 1e-9)

let test_stats_loglog_exponent () =
  (* y = 2 x^1.5 *)
  let pts = List.map (fun x -> (x, 2.0 *. Float.pow x 1.5)) [ 1.0; 2.0; 4.0; 8.0; 16.0 ] in
  let f = Stats.loglog_exponent pts in
  checkb "exponent 1.5" true (Float.abs (f.Stats.slope -. 1.5) < 1e-9)

let test_stats_loglog_skips_nonpositive () =
  let pts = [ (0.0, 1.0); (1.0, 2.0); (2.0, 4.0); (4.0, 8.0) ] in
  let f = Stats.loglog_exponent pts in
  checkb "finite" true (Float.is_finite f.Stats.slope)

let test_stats_wilson () =
  let lo, hi = Stats.wilson_interval ~successes:50 ~trials:100 () in
  checkb "contains p-hat" true (lo < 0.5 && hi > 0.5);
  checkb "bounded" true (lo >= 0.0 && hi <= 1.0);
  let lo0, hi0 = Stats.wilson_interval ~successes:0 ~trials:0 () in
  checkb "degenerate" true (lo0 = 0.0 && hi0 = 1.0)

let test_stats_chi2_uniform () =
  checkb "uniform counts -> 0" true (Stats.chi2_uniform [| 10; 10; 10 |] < 1e-9);
  checkb "skewed counts -> large" true (Stats.chi2_uniform [| 30; 0; 0 |] > 10.0)

(* ---------------------------------------------------------------- Table *)

let contains_substring s sub =
  let ls = String.length s and lsub = String.length sub in
  let rec go i = if i + lsub > ls then false else String.sub s i lsub = sub || go (i + 1) in
  go 0

let test_table_render () =
  let t = Table.make ~title:"t" ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "33"; "4" ] ] in
  let s = Table.render t in
  checkb "has title" true (String.length s > 0 && String.sub s 0 4 = "## t");
  checkb "has header cell" true (contains_substring s "bb");
  checkb "has data cell" true (contains_substring s "33");
  checki "five lines" 5 (List.length (String.split_on_char '\n' (String.trim s)))

let test_table_fcell () =
  Alcotest.(check string) "fcell" "1.50" (Table.fcell 1.5);
  Alcotest.(check string) "nan" "-" (Table.fcell Float.nan);
  Alcotest.(check string) "prec" "1.234" (Table.fcell ~prec:3 1.2341)

(* ------------------------------------------------------------- Jsonout *)

let test_jsonout_roundtrip () =
  let doc =
    Jsonout.Obj
      [
        ("schema", Str "tfree-bench/v1");
        ("n", Num 42.0);
        ("pi", Num 3.5);
        ("flag", Bool true);
        ("nothing", Null);
        ("rows", List [ Num 1.0; Num 2.0; Obj [] ]);
        ("empty", List []);
      ]
  in
  match Jsonout.parse (Jsonout.to_string doc) with
  | Ok v -> checkb "roundtrip" true (v = doc)
  | Error msg -> Alcotest.fail msg

let test_jsonout_escaping () =
  let doc = Jsonout.Obj [ ("k\"ey", Str "line\nbreak\tand \\ quote \"") ] in
  match Jsonout.parse (Jsonout.to_string doc) with
  | Ok v -> checkb "escaped roundtrip" true (v = doc)
  | Error msg -> Alcotest.fail msg

let test_jsonout_integral_floats () =
  checkb "42 bare" true (contains_substring (Jsonout.to_string (Jsonout.Num 42.0)) "42");
  checkb "no decimal point" false (contains_substring (Jsonout.to_string (Jsonout.Num 42.0)) ".");
  (* NaN has no JSON encoding; it must degrade to null, not emit "nan". *)
  checkb "nan -> null" true (contains_substring (Jsonout.to_string (Jsonout.Num Float.nan)) "null")

let test_jsonout_rejects_garbage () =
  let bad s = match Jsonout.parse s with Ok _ -> false | Error _ -> true in
  checkb "unterminated" true (bad "{\"a\": 1");
  checkb "trailing" true (bad "{} {}");
  checkb "bare word" true (bad "bogus");
  checkb "empty" true (bad "")

let test_jsonout_member () =
  let doc = Jsonout.Obj [ ("a", Num 1.0); ("b", Bool false) ] in
  checkb "present" true (Jsonout.member "a" doc = Some (Jsonout.Num 1.0));
  checkb "absent" true (Jsonout.member "z" doc = None);
  checkb "non-object" true (Jsonout.member "a" (Jsonout.Num 1.0) = None);
  checkb "to_float" true (Jsonout.to_float (Jsonout.Num 1.5) = Some 1.5);
  checkb "to_list" true (Jsonout.to_list (Jsonout.List []) = Some [])

(* ----------------------------------------------------------------- Lru *)

let test_lru_basics () =
  let c = Lru.create 2 in
  checkb "fresh empty" true (Lru.length c = 0 && Lru.lookups c = 0);
  checkb "miss" true (Lru.find_opt c "a" = None);
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  checkb "hit a" true (Lru.find_opt c "a" = Some 1);
  checkb "hit b" true (Lru.find_opt c "b" = Some 2);
  checki "hits" 2 (Lru.hits c);
  checki "misses" 1 (Lru.misses c);
  checki "lookups" 3 (Lru.lookups c)

let test_lru_evicts_least_recently_used () =
  let c = Lru.create 2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  ignore (Lru.find_opt c "a");  (* refresh a: b is now oldest *)
  Lru.add c "c" 3;
  checkb "b evicted" true (not (Lru.mem c "b"));
  checkb "a survives" true (Lru.mem c "a");
  checkb "c present" true (Lru.mem c "c");
  checki "at capacity" 2 (Lru.length c)

let test_lru_replace_same_key () =
  let c = Lru.create 2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "a" 10;  (* replace, not insert: nothing evicted *)
  checkb "replaced" true (Lru.find_opt c "a" = Some 10);
  checkb "b kept" true (Lru.mem c "b");
  checki "length" 2 (Lru.length c)

let test_lru_find_or_add () =
  let c = Lru.create 4 in
  let builds = ref 0 in
  let build () = incr builds; !builds in
  checki "built once" 1 (Lru.find_or_add c 7 build);
  checki "cached" 1 (Lru.find_or_add c 7 build);
  checki "builds" 1 !builds;
  checki "hits" 1 (Lru.hits c);
  checki "misses" 1 (Lru.misses c)

let test_lru_rejects_bad_capacity () =
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Lru.create: capacity must be >= 1") (fun () -> ignore (Lru.create 0))

let test_lru_clear () =
  let c = Lru.create 2 in
  Lru.add c 1 "x";
  ignore (Lru.find_opt c 1);
  Lru.clear c;
  checkb "empty" true (Lru.length c = 0 && Lru.hits c = 0 && Lru.misses c = 0)

(* -------------------------------------------------------------- QCheck *)

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"bernoulli_subset within range" ~count:200
      (pair small_nat (float_range 0.0 1.0))
      (fun (n, p) ->
        let r = Rng.create (n + 1) in
        List.for_all (fun i -> i >= 0 && i < n) (Sampling.bernoulli_subset r n ~p));
    Test.make ~name:"without_replacement size/distinct" ~count:200 (pair (int_range 1 200) (int_range 0 200))
      (fun (n, m) ->
        let m = min m n in
        let r = Rng.create (n + (7 * m)) in
        let s = Sampling.without_replacement r n m in
        List.length s = m && List.length (List.sort_uniq compare s) = m);
    Test.make ~name:"bits monotone in cardinality" ~count:200 (int_range 1 1_000_000) (fun c ->
        Bits.for_card c <= Bits.for_card (c + 1));
    Test.make ~name:"for_card inverts power of two" ~count:30 (int_range 1 30) (fun b ->
        Bits.for_card (1 lsl b) = b);
    Test.make ~name:"elias gamma grows logarithmically" ~count:200 (int_range 0 1_000_000) (fun v ->
        Bits.elias_gamma v <= (2 * 20) + 1);
    Test.make ~name:"quantile within min..max" ~count:200
      (pair (list_of_size (Gen.int_range 1 30) (float_range (-100.) 100.)) (float_range 0.0 1.0))
      (fun (xs, q) ->
        let v = Stats.quantile q xs in
        let lo = List.fold_left Float.min Float.infinity xs in
        let hi = List.fold_left Float.max Float.neg_infinity xs in
        v >= lo -. 1e-9 && v <= hi +. 1e-9);
    Test.make ~name:"shuffle preserves multiset" ~count:100 (list small_int) (fun l ->
        let r = Rng.create (Hashtbl.hash l) in
        List.sort compare (Sampling.shuffle r l) = List.sort compare l);
    Test.make ~name:"lru never exceeds capacity; counters reconcile" ~count:200
      (pair (int_range 1 8) (list (pair (int_range 0 20) bool)))
      (fun (cap, ops) ->
        let c = Lru.create cap in
        let lookups = ref 0 in
        List.iter
          (fun (key, write) ->
            if write then Lru.add c key key
            else begin
              incr lookups;
              match Lru.find_opt c key with
              | Some v -> assert (v = key)
              | None -> ()
            end)
          ops;
        Lru.length c <= cap && Lru.lookups c = !lookups && Lru.hits c + Lru.misses c = !lookups);
  ]

let () =
  Alcotest.run "tfree_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split purity" `Quick test_rng_split_independent_of_parent_advance;
          Alcotest.test_case "split key sensitivity" `Quick test_rng_split_key_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects nonpositive" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "bool probability" `Quick test_rng_bool_probability;
          Alcotest.test_case "hash_float deterministic" `Quick test_rng_hash_float_deterministic;
          Alcotest.test_case "hash_float spread" `Quick test_rng_hash_float_spread;
          Alcotest.test_case "hash_float2 order" `Quick test_rng_hash_float2_symmetry_breaking;
          Alcotest.test_case "geometric p=1" `Quick test_rng_geometric_zero_p_one;
          Alcotest.test_case "geometric mean" `Quick test_rng_geometric_mean;
          Alcotest.test_case "copy isolation" `Quick test_rng_copy_isolated;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_subset_extremes;
          Alcotest.test_case "bernoulli sorted+distinct" `Quick test_bernoulli_subset_sorted_distinct;
          Alcotest.test_case "bernoulli expected size" `Quick test_bernoulli_subset_size;
          Alcotest.test_case "without_replacement basic" `Quick test_without_replacement_basic;
          Alcotest.test_case "without_replacement all" `Quick test_without_replacement_all;
          Alcotest.test_case "without_replacement m>n" `Quick test_without_replacement_too_many;
          Alcotest.test_case "without_replacement uniform" `Quick test_without_replacement_uniform;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "choose member" `Quick test_choose_member;
          Alcotest.test_case "choose empty" `Quick test_choose_empty;
          Alcotest.test_case "reservoir short" `Quick test_reservoir_short_input;
          Alcotest.test_case "reservoir size" `Quick test_reservoir_size_and_membership;
          Alcotest.test_case "reservoir uniform" `Quick test_reservoir_uniform;
          Alcotest.test_case "binomial" `Quick test_binomial_bounds_and_mean;
        ] );
      ( "bits",
        [
          Alcotest.test_case "for_card" `Quick test_bits_for_card;
          Alcotest.test_case "vertex/edge" `Quick test_bits_vertex_edge;
          Alcotest.test_case "int_in_range" `Quick test_bits_int_in_range;
          Alcotest.test_case "int_in_range invalid" `Quick test_bits_int_in_range_invalid;
          Alcotest.test_case "elias gamma" `Quick test_bits_elias_gamma;
          Alcotest.test_case "log2" `Quick test_bits_log2;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/variance" `Quick test_stats_mean_variance;
          Alcotest.test_case "empty mean" `Quick test_stats_empty_mean_nan;
          Alcotest.test_case "quantiles" `Quick test_stats_quantiles;
          Alcotest.test_case "quantile edges" `Quick test_stats_quantile_edges;
          Alcotest.test_case "linear fit" `Quick test_stats_linear_fit_exact;
          Alcotest.test_case "loglog exponent" `Quick test_stats_loglog_exponent;
          Alcotest.test_case "loglog nonpositive" `Quick test_stats_loglog_skips_nonpositive;
          Alcotest.test_case "wilson" `Quick test_stats_wilson;
          Alcotest.test_case "chi2" `Quick test_stats_chi2_uniform;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "fcell" `Quick test_table_fcell;
        ] );
      ( "jsonout",
        [
          Alcotest.test_case "roundtrip" `Quick test_jsonout_roundtrip;
          Alcotest.test_case "escaping" `Quick test_jsonout_escaping;
          Alcotest.test_case "integral floats" `Quick test_jsonout_integral_floats;
          Alcotest.test_case "rejects garbage" `Quick test_jsonout_rejects_garbage;
          Alcotest.test_case "member/accessors" `Quick test_jsonout_member;
        ] );
      ( "lru",
        [
          Alcotest.test_case "basics" `Quick test_lru_basics;
          Alcotest.test_case "evicts LRU" `Quick test_lru_evicts_least_recently_used;
          Alcotest.test_case "replace same key" `Quick test_lru_replace_same_key;
          Alcotest.test_case "find_or_add" `Quick test_lru_find_or_add;
          Alcotest.test_case "bad capacity" `Quick test_lru_rejects_bad_capacity;
          Alcotest.test_case "clear" `Quick test_lru_clear;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
