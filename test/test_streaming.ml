(* Tests for Tfree_streaming: stream runner, sampling detector, and the
   one-way ⇄ streaming bridge of §4.2.2. *)

open Tfree_util
open Tfree_graph
open Tfree_streaming

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* A toy counting algorithm for runner tests: state = edges seen. *)
let counter : (int, int) Stream_alg.t =
  {
    Stream_alg.init = (fun ~n:_ -> 0);
    step = (fun c _ -> c + 1);
    finish = (fun c -> c);
    size_bits = (fun c -> Bits.elias_gamma c);
  }

let test_run_counts_edges () =
  let rng = Rng.create 1 in
  let g = Gen.gnp rng ~n:40 ~p:0.2 in
  let o = Stream_alg.run counter ~n:40 (Stream_alg.stream_of_graph rng g) in
  checki "edges seen" (Graph.m g) o.Stream_alg.edges_seen;
  checki "result" (Graph.m g) o.Stream_alg.result;
  checkb "space is the high-water mark" true (o.Stream_alg.space_bits >= Bits.elias_gamma (Graph.m g))

let test_stream_of_partition_order () =
  let rng = Rng.create 2 in
  let g = Gen.gnp rng ~n:20 ~p:0.3 in
  let parts = Partition.disjoint_random rng ~k:3 g in
  let seen = List.of_seq (Stream_alg.stream_of_partition parts) in
  checki "all edges streamed" (Graph.m g) (List.length seen);
  (* segment order: first all of player 0's edges, etc. *)
  let expected =
    List.concat_map (fun j -> Graph.edges (Partition.player parts j)) [ 0; 1; 2 ]
  in
  Alcotest.(check (list (pair int int))) "segment order" expected seen

let test_detector_one_sided () =
  let rng = Rng.create 3 in
  let g = Gen.free_with_degree rng ~n:300 ~d:5.0 in
  for s = 1 to 10 do
    let det = Detector.make ~seed:s ~p:0.5 in
    let o = Stream_alg.run det ~n:300 (Stream_alg.stream_of_graph rng g) in
    checkb "never fabricates a triangle" true (o.Stream_alg.result = None)
  done

let test_detector_finds_on_far () =
  let rng = Rng.create 4 in
  let g = Gen.far_with_degree rng ~n:300 ~d:17.3 ~eps:0.1 in
  let p = Detector.tuned_p ~n:300 ~d:17.3 ~eps:0.1 ~c:3.0 in
  let hits = ref 0 in
  for s = 1 to 20 do
    let det = Detector.make ~seed:s ~p in
    let o = Stream_alg.run det ~n:300 (Stream_alg.stream_of_graph rng g) in
    match o.Stream_alg.result with
    | Some t ->
        checkb "real triangle" true (Triangle.is_triangle g t);
        incr hits
    | None -> ()
  done;
  checkb (Printf.sprintf "hits %d/20" !hits) true (!hits >= 10)

let test_detector_space_scales_with_p () =
  let rng = Rng.create 5 in
  let g = Gen.gnp rng ~n:400 ~p:0.05 in
  let space p =
    let det = Detector.make ~seed:1 ~p in
    (Stream_alg.run det ~n:400 (Stream_alg.stream_of_graph rng g)).Stream_alg.space_bits
  in
  checkb "smaller p, less space" true (space 0.1 <= space 0.9)

let test_bridge_messages_within_space () =
  let rng = Rng.create 6 in
  let g = Gen.far_with_degree rng ~n:300 ~d:10.0 ~eps:0.1 in
  let parts = Partition.disjoint_random rng ~k:3 g in
  let det = Detector.make ~seed:2 ~p:0.3 in
  let b = Bridge.oneway_of_streaming det ~inputs:parts in
  let a_bits, b_bits = b.Bridge.message_bits in
  checkb "alice message <= space" true (a_bits <= b.Bridge.space_bits);
  checkb "bob message <= space" true (b_bits <= b.Bridge.space_bits);
  checkb "messages grow along the stream" true (a_bits <= b_bits)

let test_bridge_agrees_with_direct_run () =
  (* Running the streaming algorithm through the bridge equals running it
     directly on the concatenated stream. *)
  let rng = Rng.create 7 in
  let g = Gen.far_with_degree rng ~n:200 ~d:8.0 ~eps:0.1 in
  let parts = Partition.disjoint_random rng ~k:3 g in
  let det = Detector.make ~seed:3 ~p:0.4 in
  let direct = Stream_alg.run det ~n:200 (Stream_alg.stream_of_partition parts) in
  let bridged = Bridge.oneway_of_streaming det ~inputs:parts in
  checkb "same verdict" true (direct.Stream_alg.result = bridged.Bridge.result);
  checki "same space" direct.Stream_alg.space_bits bridged.Bridge.space_bits

let test_bridge_needs_three_players () =
  let rng = Rng.create 8 in
  let g = Gen.gnp rng ~n:20 ~p:0.2 in
  let parts = Partition.disjoint_random rng ~k:2 g in
  Alcotest.check_raises "k=3 required"
    (Invalid_argument "Bridge.oneway_of_streaming: needs 3 players") (fun () ->
      ignore (Bridge.oneway_of_streaming (Detector.make ~seed:1 ~p:0.5) ~inputs:parts))

let test_detector_respects_sample () =
  (* Retained edges have both endpoints in the sample. *)
  let rng = Rng.create 9 in
  let g = Gen.gnp rng ~n:100 ~p:0.1 in
  let det = Detector.make ~seed:4 ~p:0.3 in
  let st0 = det.Stream_alg.init ~n:100 in
  let final = List.fold_left det.Stream_alg.step st0 (Graph.edges g) in
  List.iter
    (fun (u, v) -> checkb "kept endpoints sampled" true (final.Detector.keep u && final.Detector.keep v))
    final.Detector.edges

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"stream runner sees every edge exactly once" ~count:50 (int_range 1 500)
      (fun seed ->
        let rng = Rng.create seed in
        let g = Tfree_graph.Gen.gnp rng ~n:30 ~p:0.2 in
        let o = Stream_alg.run counter ~n:30 (Stream_alg.stream_of_graph rng g) in
        o.Stream_alg.edges_seen = Graph.m g);
    Test.make ~name:"detector never fabricates on free graphs" ~count:30 (int_range 1 500)
      (fun seed ->
        let rng = Rng.create seed in
        let g = Tfree_graph.Gen.free_with_degree rng ~n:100 ~d:4.0 in
        let det = Detector.make ~seed ~p:0.6 in
        (Stream_alg.run det ~n:100 (Stream_alg.stream_of_graph rng g)).Stream_alg.result = None);
    Test.make ~name:"detector result independent of stream order" ~count:30 (int_range 1 500)
      (fun seed ->
        let rng = Rng.create seed in
        let g = Tfree_graph.Gen.gnp rng ~n:60 ~p:0.15 in
        let det = Detector.make ~seed ~p:0.5 in
        let r1 =
          (Stream_alg.run det ~n:60 (Stream_alg.stream_of_graph (Rng.create 1) g)).Stream_alg.result
        in
        let r2 =
          (Stream_alg.run det ~n:60 (Stream_alg.stream_of_graph (Rng.create 2) g)).Stream_alg.result
        in
        (* the retained edge set is order-independent, so found-vs-not is too *)
        Option.is_some r1 = Option.is_some r2);
    (* the §4.2.2 translation, property-tested: on random instances the
       bridged one-way protocol and the direct streaming run agree, and the
       bits the bridge claims for each message are exactly the serialized
       state sizes at the two segment boundaries *)
    Test.make ~name:"bridge = direct streaming run on random instances" ~count:40
      (pair (int_range 1 1000) bool)
      (fun (seed, far) ->
        let rng = Rng.create seed in
        let g =
          if far then Tfree_graph.Gen.far_with_degree rng ~n:120 ~d:6.0 ~eps:0.1
          else Tfree_graph.Gen.free_with_degree rng ~n:120 ~d:6.0
        in
        let parts = Partition.disjoint_random rng ~k:3 g in
        let det = Detector.make ~seed ~p:0.4 in
        let direct = Stream_alg.run det ~n:120 (Stream_alg.stream_of_partition parts) in
        let bridged = Bridge.oneway_of_streaming det ~inputs:parts in
        direct.Stream_alg.result = bridged.Bridge.result
        && direct.Stream_alg.space_bits = bridged.Bridge.space_bits
        && (not far || not (Option.is_some bridged.Bridge.result)
            || Triangle.is_triangle g (Option.get bridged.Bridge.result)));
    Test.make ~name:"bridge message bits = prefix state sizes <= space" ~count:40
      (int_range 1 1000)
      (fun seed ->
        let rng = Rng.create seed in
        let g = Tfree_graph.Gen.gnp rng ~n:80 ~p:0.1 in
        let parts = Partition.disjoint_random rng ~k:3 g in
        let det = Detector.make ~seed ~p:0.5 in
        let bridged = Bridge.oneway_of_streaming det ~inputs:parts in
        (* recompute the two shipped states independently of the bridge *)
        let run_prefix players =
          List.fold_left
            (fun st j ->
              List.fold_left det.Stream_alg.step st (Graph.edges (Partition.player parts j)))
            (det.Stream_alg.init ~n:80) players
        in
        let alice_bits = det.Stream_alg.size_bits (run_prefix [ 0 ]) in
        let bob_bits = det.Stream_alg.size_bits (run_prefix [ 0; 1 ]) in
        bridged.Bridge.message_bits = (alice_bits, bob_bits)
        && alice_bits <= bridged.Bridge.space_bits
        && bob_bits <= bridged.Bridge.space_bits);
  ]

let () =
  Alcotest.run "tfree_streaming"
    [
      ( "runner",
        [
          Alcotest.test_case "counts edges" `Quick test_run_counts_edges;
          Alcotest.test_case "partition stream order" `Quick test_stream_of_partition_order;
        ] );
      ( "detector",
        [
          Alcotest.test_case "one-sided" `Quick test_detector_one_sided;
          Alcotest.test_case "finds on far" `Slow test_detector_finds_on_far;
          Alcotest.test_case "space scales" `Quick test_detector_space_scales_with_p;
          Alcotest.test_case "respects sample" `Quick test_detector_respects_sample;
        ] );
      ( "bridge",
        [
          Alcotest.test_case "messages within space" `Quick test_bridge_messages_within_space;
          Alcotest.test_case "agrees with direct run" `Quick test_bridge_agrees_with_direct_run;
          Alcotest.test_case "needs three players" `Quick test_bridge_needs_three_players;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
