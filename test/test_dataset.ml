(* Tests for Tfree_dataset: the streaming DIMACS and edge-list parsers,
   the binary snapshot format, the named-dataset registry, and the
   {"op": "dataset"} service path — round trips, fail-closed rejection of
   every malformed-input shape, and byte-identical parity between
   dataset-backed and generated-instance queries. *)

open Tfree_util
open Tfree_graph
module Dataset_error = Tfree_dataset.Dataset_error
module Dimacs = Tfree_dataset.Dimacs
module Edgelist = Tfree_dataset.Edgelist
module Snapshot = Tfree_dataset.Snapshot
module Registry = Tfree_dataset.Registry
module Service = Tfree_wire.Service
module Proto = Tfree_wire.Proto
module Metrics = Tfree_wire.Metrics

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* canonical equality: same sorted deduplicated edge set on the same n *)
let same_graph a b = String.equal (Snapshot.encode a) (Snapshot.encode b)

let rejected what f =
  match f () with
  | _ -> Alcotest.failf "%s: accepted malformed input" what
  | exception Dataset_error.Dataset_error _ -> ()

(* ---------------------------------------------------------------- dimacs *)

let test_dimacs_parses () =
  let g = Dimacs.parse_string "c hi\n\np edge 4 4\ne 1 2\nc mid\ne 2 3\ne 1 2\n e 3 4\n" in
  checki "n" 4 (Graph.n g);
  (* four edge lines against m=4, but the duplicate e 1 2 collapses *)
  checki "m" 3 (Graph.m g);
  checkb "edge 0-1" true (Graph.mem_edge g 0 1);
  checkb "edge 2-3" true (Graph.mem_edge g 2 3)

let test_dimacs_rejects () =
  List.iter
    (fun (what, text) -> rejected what (fun () -> Dimacs.parse_string text))
    [
      ("edge before header", "e 1 2\np edge 3 1\n");
      ("no header", "c only comments\n");
      ("bad kind", "p foo 3 1\ne 1 2\n");
      ("short header", "p edge 3\ne 1 2\n");
      ("negative counts", "p edge -3 1\ne 1 2\n");
      ("vertex zero", "p edge 3 1\ne 0 2\n");
      ("vertex too big", "p edge 3 1\ne 1 4\n");
      ("non-integer vertex", "p edge 3 1\ne 1 x\n");
      ("three tokens", "p edge 3 1\ne 1 2 3\n");
      ("too few edges", "p edge 3 2\ne 1 2\n");
      ("too many edges", "p edge 3 1\ne 1 2\ne 2 3\n");
      ("second header", "p edge 3 1\np edge 3 1\ne 1 2\n");
      ("unknown line kind", "p edge 3 1\nq 1 2\ne 1 2\n");
    ]

(* -------------------------------------------------------------- edgelist *)

let test_edgelist_parses () =
  let g = Edgelist.parse_string "# banner\n0 1\n\n2 0\n1\t2\n" in
  checki "n inferred" 3 (Graph.n g);
  checki "m" 3 (Graph.m g);
  (* explicit n keeps trailing isolated vertices *)
  let g5 = Edgelist.parse_string ~n:5 "0 1\n" in
  checki "n pinned" 5 (Graph.n g5)

let test_edgelist_rejects () =
  List.iter
    (fun (what, n, text) -> rejected what (fun () -> Edgelist.parse_string ?n text))
    [
      ("one token", None, "0 1\n2\n");
      ("three tokens", None, "0 1 2\n");
      ("non-integer", None, "0 x\n");
      ("negative", None, "0 -1\n");
      ("out of range under n", Some 3, "0 3\n");
    ]

(* -------------------------------------------------------------- snapshot *)

let sample_graph seed =
  let rng = Rng.create seed in
  Gen.gnp rng ~n:60 ~p:0.1

let test_snapshot_roundtrip () =
  List.iter
    (fun seed ->
      let g = sample_graph seed in
      let image = Snapshot.encode g in
      checkb "decode inverts encode" true (same_graph g (Snapshot.decode image)))
    [ 1; 2; 3; 17 ];
  (* degenerate shapes *)
  checkb "empty graph" true (same_graph (Graph.of_edges ~n:0 []) (Snapshot.decode (Snapshot.encode (Graph.of_edges ~n:0 []))));
  checkb "edgeless graph" true
    (same_graph (Graph.of_edges ~n:7 []) (Snapshot.decode (Snapshot.encode (Graph.of_edges ~n:7 []))))

let test_snapshot_fails_closed () =
  let g = sample_graph 5 in
  let image = Snapshot.encode g in
  rejected "bad magic" (fun () -> Snapshot.decode ("XXXX" ^ String.sub image 4 (String.length image - 4)));
  rejected "bad version" (fun () ->
      let b = Bytes.of_string image in
      Bytes.set b 4 '\x09';
      (* keep the checksum honest so the version check itself must fire *)
      Snapshot.decode (Snapshot.encode (Snapshot.decode image) |> fun _ -> Bytes.to_string b));
  (* every truncation point fails *)
  for keep = 0 to String.length image - 1 do
    rejected (Printf.sprintf "truncated at %d" keep) (fun () ->
        Snapshot.decode (String.sub image 0 keep))
  done;
  (* every single bit flip after the magic fails (the sum16 checksum) *)
  for byte = 4 to String.length image - 1 do
    let b = Bytes.of_string image in
    Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor 1));
    rejected (Printf.sprintf "bit flip at byte %d" byte) (fun () -> Snapshot.decode (Bytes.to_string b))
  done;
  rejected "trailing bytes" (fun () -> Snapshot.decode (image ^ "\x00"))

(* -------------------------------------------------------------- of_edge_seq *)

let test_of_edge_seq_matches_of_edges () =
  List.iter
    (fun seed ->
      let rng = Rng.create (100 + seed) in
      let n = 30 in
      let edges =
        List.init 80 (fun _ -> (Rng.int rng n, Rng.int rng n))
        (* self-loops and duplicates on purpose *)
      in
      checkb "of_edge_seq = of_edges" true
        (same_graph (Graph.of_edges ~n edges) (Graph.of_edge_seq ~n (List.to_seq edges))))
    [ 1; 2; 3 ];
  (* the graph layer itself rejects out-of-range vertices *)
  match Graph.of_edge_seq ~n:3 (List.to_seq [ (0, 3) ]) with
  | _ -> Alcotest.fail "of_edge_seq accepted an out-of-range vertex"
  | exception Invalid_argument _ -> ()

(* -------------------------------------------------------------- registry *)

let with_temp_dir f =
  let dir = Filename.temp_file "tfree_test_ds" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun x -> try Sys.remove (Filename.concat dir x) with Sys_error _ -> ()) (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let test_registry_roundtrip () =
  with_temp_dir (fun dir ->
      let g = sample_graph 9 in
      Snapshot.save g (Filename.concat dir "g.tfs");
      Dimacs.save g (Filename.concat dir "g.col");
      let reg = Registry.create ~dir () in
      Registry.add reg
        { Registry.name = "snap"; path = "g.tfs"; format = Registry.Snapshot; n = Graph.n g;
          m = Graph.m g;
          gen = Some { Registry.gen_family = "gnp"; gen_n = 60; gen_d = 6.0; gen_eps = 0.1; gen_seed = 9 } };
      Registry.add reg
        { Registry.name = "col"; path = "g.col"; format = Registry.Dimacs; n = Graph.n g;
          m = Graph.m g; gen = None };
      let manifest = Filename.concat dir "datasets.json" in
      Registry.save reg manifest;
      let reg' = Registry.load manifest in
      checki "entries survive" 2 (List.length (Registry.entries reg'));
      checkb "snapshot graph loads" true (same_graph g (Registry.graph reg' "snap"));
      checkb "dimacs graph loads" true (same_graph g (Registry.graph reg' "col"));
      (* memoized: same physical graph on the second call *)
      checkb "graph memoized" true (Registry.graph reg' "snap" == Registry.graph reg' "snap");
      (match Registry.find reg' "snap" with
      | Some { Registry.gen = Some m; _ } -> checki "gen seed survives" 9 m.Registry.gen_seed
      | _ -> Alcotest.fail "gen metadata lost");
      rejected "unknown dataset" (fun () -> Registry.graph reg' "nope"))

let test_registry_fails_closed () =
  with_temp_dir (fun dir ->
      let manifest = Filename.concat dir "datasets.json" in
      let write s = Out_channel.with_open_text manifest (fun oc -> Out_channel.output_string oc s) in
      write "{ not json";
      rejected "unparseable manifest" (fun () -> Registry.load manifest);
      write "{\"schema\": \"other/v9\", \"datasets\": []}";
      rejected "wrong schema" (fun () -> Registry.load manifest);
      write "{\"schema\": \"tfree-datasets/v1\", \"datasets\": [{\"name\": \"x\"}]}";
      rejected "entry missing fields" (fun () -> Registry.load manifest);
      (* a manifest lying about n/m fails when the graph loads *)
      let g = sample_graph 11 in
      Snapshot.save g (Filename.concat dir "g.tfs");
      let reg = Registry.create ~dir () in
      Registry.add reg
        { Registry.name = "lie"; path = "g.tfs"; format = Registry.Snapshot; n = Graph.n g;
          m = Graph.m g + 1; gen = None };
      rejected "manifest n/m mismatch" (fun () -> Registry.graph reg "lie"))

let test_sniff () =
  with_temp_dir (fun dir ->
      let g = sample_graph 13 in
      let write name s =
        let p = Filename.concat dir name in
        Out_channel.with_open_bin p (fun oc -> Out_channel.output_string oc s);
        p
      in
      let snap = write "a" (Snapshot.encode g) in
      let col = write "b" (Dimacs.to_string g) in
      let lst = write "c" (Edgelist.to_string g) in
      checkb "snapshot sniffed" true (Registry.sniff snap = Registry.Snapshot);
      checkb "dimacs sniffed" true (Registry.sniff col = Registry.Dimacs);
      checkb "edge list sniffed" true (Registry.sniff lst = Registry.Edges);
      List.iter
        (fun p -> checkb "load_graph agrees with sniff" true (same_graph g (Registry.load_graph p)))
        [ snap; col; lst ])

(* ------------------------------------------------- dataset_request codecs *)

let sample_dreq =
  {
    Service.ds_name = "corpus-1";
    ds_partition = Service.Skewed;
    ds_protocol = Service.Exact;
    ds_k = 6;
    ds_eps = 0.25;
    ds_seed = 99;
    ds_transport = Tfree_wire.Wire_runtime.Socketpair;
    ds_fault = "2:drop";
  }

let test_dataset_request_json_roundtrip () =
  List.iter
    (fun dreq ->
      match Service.dataset_request_of_json (Service.dataset_request_to_json dreq) with
      | Ok back -> checkb "json round-trips" true (back = dreq)
      | Error msg -> Alcotest.failf "json round trip failed: %s" msg)
    [ sample_dreq; Service.default_dataset_request ~name:"x" ];
  (match Service.dataset_request_of_json (Jsonout.Obj [ ("op", Jsonout.Str "dataset") ]) with
  | Ok _ -> Alcotest.fail "accepted a dataset request with no name"
  | Error _ -> ());
  match Service.dataset_request_of_json (Jsonout.Obj [ ("op", Jsonout.Str "dataset"); ("name", Jsonout.Str "x"); ("fault", Jsonout.Str "bogus") ]) with
  | Ok _ -> Alcotest.fail "accepted a bogus fault spec"
  | Error _ -> ()

let test_dataset_request_binary_roundtrip () =
  List.iter
    (fun dreq ->
      let buf = Proto.create_buf () in
      Service.encode_dataset_frame buf dreq;
      let frame = Bytes.sub (Proto.storage buf) (Proto.frame_off buf) (Proto.frame_len buf) in
      let cur = Proto.cursor () in
      let used = Proto.try_frame frame ~pos:0 ~limit:(Bytes.length frame) cur in
      checki "frame consumed" (Bytes.length frame) used;
      checki "dataset tag" Service.tag_dataset (Proto.get_u8 cur);
      match Service.decode_dataset_request_body cur with
      | Ok back ->
          Proto.expect_end cur;
          checkb "binary round-trips" true (back = dreq)
      | Error msg -> Alcotest.failf "binary round trip failed: %s" msg)
    [ sample_dreq; Service.default_dataset_request ~name:"x" ]

(* --------------------------------------------------- service parity (in-process) *)

let gen_n = 250
let gen_d = 5.0
let gen_seed = 21

let with_gen_registry f =
  with_temp_dir (fun dir ->
      let g = Service.build_instance Service.Far (Service.graph_rng gen_seed) ~n:gen_n ~d:gen_d ~eps:0.1 in
      Snapshot.save g (Filename.concat dir "g.tfs");
      let reg = Registry.create ~dir () in
      Registry.add reg
        { Registry.name = "gen"; path = "g.tfs"; format = Registry.Snapshot; n = Graph.n g;
          m = Graph.m g;
          gen = Some { Registry.gen_family = "far"; gen_n; gen_d; gen_eps = 0.1; gen_seed } };
      f reg)

let test_run_dataset_matches_run_request () =
  with_gen_registry (fun registry ->
      List.iter
        (fun protocol ->
          let dreq =
            { (Service.default_dataset_request ~name:"gen") with ds_protocol = protocol; ds_seed = gen_seed }
          in
          let req =
            { Service.default_request with family = Service.Far; protocol; n = gen_n; d = gen_d; seed = gen_seed }
          in
          checkb
            (Printf.sprintf "dataset = generated (%s)" (Service.protocol_to_string protocol))
            true
            (Service.run_dataset_request ~registry dreq = Service.run_request req))
        [ Service.Sim; Service.Oblivious; Service.Exact; Service.Unrestricted ])

let test_dataset_cache_key () =
  with_gen_registry (fun registry ->
      let cache = Service.create_cache () in
      let metrics = Metrics.create () in
      let dreq = { (Service.default_dataset_request ~name:"gen") with ds_seed = 4 } in
      let r1 = Service.run_dataset_request ~cache ~metrics ~registry dreq in
      let r2 = Service.run_dataset_request ~cache ~metrics ~registry dreq in
      checkb "cached repeat is identical" true (r1 = r2);
      checki "one miss" 1 (Metrics.cache_misses metrics);
      checki "one hit" 1 (Metrics.cache_hits metrics);
      (* a different protocol shares the instance (protocol not in the key) *)
      let _ = Service.run_dataset_request ~cache ~metrics ~registry { dreq with Service.ds_protocol = Service.Exact } in
      checki "protocol change still hits" 2 (Metrics.cache_hits metrics))

let test_handle_line_dataset_errors () =
  let metrics = Metrics.create () in
  let stop = ref false in
  let expect_category line ~registry cat =
    let reply, served =
      match registry with
      | Some registry -> Service.handle_line ~registry ~metrics ~stop line
      | None -> Service.handle_line ~metrics ~stop line
    in
    checki "not served" 0 served;
    match Jsonout.parse reply with
    | Error msg -> Alcotest.failf "error reply is not JSON: %s" msg
    | Ok json -> (
        checkb "ok=false" true (Jsonout.member "ok" json = Some (Jsonout.Bool false));
        match Jsonout.member "category" json with
        | Some (Jsonout.Str c) -> checks "category" cat c
        | _ -> Alcotest.fail "error reply carries no category")
  in
  let line = Jsonout.to_line (Service.dataset_request_to_json (Service.default_dataset_request ~name:"gen")) in
  (* no registry configured: unknown op, fatal client-side *)
  expect_category line ~registry:None "unknown_op";
  with_gen_registry (fun registry ->
      (* unknown name: malformed *)
      let bad =
        Jsonout.to_line (Service.dataset_request_to_json (Service.default_dataset_request ~name:"nope"))
      in
      expect_category bad ~registry:(Some registry) "malformed";
      (* missing name: malformed *)
      expect_category "{\"op\": \"dataset\"}" ~registry:(Some registry) "malformed")

(* ------------------------------------------------- forked server parity *)

let with_forked_server ~registry ~tag ~expect_served f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tfree-ds-%s-%d.sock" tag (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  match Unix.fork () with
  | 0 -> exit (if Service.serve ~registry ~line_timeout_s:5.0 ~path () = expect_served then 0 else 1)
  | server -> (
      let rec await tries =
        if not (Sys.file_exists path) then
          if tries = 0 then Alcotest.fail "server socket never appeared"
          else (
            Unix.sleepf 0.05;
            await (tries - 1))
      in
      await 100;
      (match f path with
      | () -> ()
      | exception e ->
          (try Service.client_shutdown ~path () with _ -> ());
          ignore (Unix.waitpid [] server);
          raise e);
      Service.client_shutdown ~path ();
      match Unix.waitpid [] server with
      | _, Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "server did not exit cleanly (or served a wrong query count)")

(* One raw JSON-line exchange on its own connection: the literal reply
   bytes, before any client-side decoding. *)
let raw_exchange path line =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_UNIX path);
      let out = Bytes.of_string (line ^ "\n") in
      let n = Unix.write sock out 0 (Bytes.length out) in
      checki "request fully written" (Bytes.length out) n;
      let buf = Buffer.create 256 in
      let b = Bytes.create 4096 in
      let rec read_line () =
        let k = Unix.read sock b 0 (Bytes.length b) in
        if k = 0 then Alcotest.fail "connection closed before the reply line";
        Buffer.add_subbytes buf b 0 k;
        if not (String.contains (Buffer.contents buf) '\n') then read_line ()
      in
      read_line ();
      let s = Buffer.contents buf in
      String.sub s 0 (String.index s '\n'))

let test_forked_server_byte_parity () =
  with_gen_registry (fun registry ->
      (* dataset query, its generated twin, and a repeat: 3 served *)
      with_forked_server ~registry ~tag:"parity" ~expect_served:3 (fun path ->
          let dataset_line =
            Jsonout.to_line
              (Service.dataset_request_to_json
                 { (Service.default_dataset_request ~name:"gen") with ds_seed = gen_seed })
          in
          let query_line =
            Jsonout.to_line
              (Service.request_to_json
                 { Service.default_request with family = Service.Far; n = gen_n; d = gen_d; seed = gen_seed })
          in
          let from_dataset = raw_exchange path dataset_line in
          let from_query = raw_exchange path query_line in
          let repeat = raw_exchange path dataset_line in
          checks "dataset reply = generated reply, byte for byte" from_query from_dataset;
          checks "repeat reply identical" from_dataset repeat;
          match Service.client_stats ~path () with
          | Error msg -> Alcotest.failf "stats: %s" msg
          | Ok stats ->
              let num obj k =
                match Option.bind (Jsonout.member k obj) Jsonout.to_float with
                | Some f -> int_of_float f
                | None -> Alcotest.failf "stats missing %S" k
              in
              let sub k = match Jsonout.member k stats with Some o -> o | None -> Alcotest.failf "stats missing %S" k in
              checki "queries served" 3 (num stats "queries_served");
              checki "dataset gauge" 2 (num (sub "datasets") "gen");
              (* dataset misses, twin misses (separate key), repeat hits *)
              checki "cache hits" 1 (num (sub "cache") "hits");
              checki "cache misses" 2 (num (sub "cache") "misses")))

(* --------------------------------------------------------------- QCheck *)

let arb_graph =
  QCheck.make
    ~print:(fun g -> Format.asprintf "%a" Graph.pp g)
    QCheck.Gen.(
      int_range 2 60 >>= fun n ->
      int_range 0 1000 >|= fun seed ->
      let rng = Rng.create seed in
      Gen.gnp rng ~n ~p:0.15)

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"graph -> dimacs -> parse is the identity" ~count:100 arb_graph (fun g ->
        same_graph g (Dimacs.parse_string (Dimacs.to_string g)));
    Test.make ~name:"graph -> edge list -> parse is the identity" ~count:100 arb_graph (fun g ->
        same_graph g (Edgelist.parse_string ~n:(Graph.n g) (Edgelist.to_string g)));
    Test.make ~name:"graph -> snapshot -> load is the identity" ~count:100 arb_graph (fun g ->
        Graph.equal g (Snapshot.decode (Snapshot.encode g)));
    Test.make ~name:"snapshot survives no single-bit flip" ~count:50
      (pair arb_graph (int_range 0 1_000_000))
      (fun (g, r) ->
        let image = Snapshot.encode g in
        let byte = 4 + (r mod (String.length image - 4)) in
        let bit = 1 lsl (r mod 8) in
        let b = Bytes.of_string image in
        Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor bit));
        match Snapshot.decode (Bytes.to_string b) with
        | _ -> false
        | exception Dataset_error.Dataset_error _ -> true);
    Test.make ~name:"of_edge_seq agrees with of_edges" ~count:100
      (pair (int_range 1 40) (small_list (pair small_nat small_nat)))
      (fun (n, raw) ->
        let edges = List.map (fun (u, v) -> (u mod n, v mod n)) raw in
        same_graph (Graph.of_edges ~n edges) (Graph.of_edge_seq ~n (List.to_seq edges)));
  ]

let () =
  Alcotest.run "tfree_dataset"
    [
      ( "dimacs",
        [
          Alcotest.test_case "parses the dialect" `Quick test_dimacs_parses;
          Alcotest.test_case "rejects every malformed shape" `Quick test_dimacs_rejects;
        ] );
      ( "edgelist",
        [
          Alcotest.test_case "parses with comments and inferred n" `Quick test_edgelist_parses;
          Alcotest.test_case "rejects every malformed shape" `Quick test_edgelist_rejects;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "round trips" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "fails closed on any corruption" `Quick test_snapshot_fails_closed;
        ] );
      ( "graph",
        [ Alcotest.test_case "of_edge_seq = of_edges" `Quick test_of_edge_seq_matches_of_edges ] );
      ( "registry",
        [
          Alcotest.test_case "manifest round trip" `Quick test_registry_roundtrip;
          Alcotest.test_case "fails closed" `Quick test_registry_fails_closed;
          Alcotest.test_case "format sniffing" `Quick test_sniff;
        ] );
      ( "service",
        [
          Alcotest.test_case "dataset request JSON round trip" `Quick
            test_dataset_request_json_roundtrip;
          Alcotest.test_case "dataset request binary round trip" `Quick
            test_dataset_request_binary_roundtrip;
          Alcotest.test_case "dataset run = generated run" `Quick
            test_run_dataset_matches_run_request;
          Alcotest.test_case "dataset instance cache" `Quick test_dataset_cache_key;
          Alcotest.test_case "typed error categories" `Quick test_handle_line_dataset_errors;
        ] );
      ( "serve",
        [ Alcotest.test_case "forked server byte parity" `Quick test_forked_server_byte_parity ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
