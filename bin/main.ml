(* tfree — command-line driver.

   Subcommands:
     run         test a generated distributed instance with a chosen protocol
     experiment  run a named reproduction experiment (see `tfree list`)
     list        list the reproduction experiments
     inspect     generate an instance and print its triangle statistics *)

open Cmdliner
open Tfree_util
open Tfree_graph

(* ----------------------------------------------------------- common args *)

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
let n_arg = Arg.(value & opt int 2000 & info [ "n" ] ~docv:"N" ~doc:"Number of vertices.")
let d_arg = Arg.(value & opt float 6.0 & info [ "d" ] ~docv:"D" ~doc:"Target average degree.")
let k_arg = Arg.(value & opt int 4 & info [ "k" ] ~docv:"K" ~doc:"Number of players.")
let eps_arg = Arg.(value & opt float 0.1 & info [ "eps" ] ~docv:"EPS" ~doc:"Farness parameter ǫ.")

let instance_arg =
  let doc =
    "Instance family: far (planted ǫ-far), free (triangle-free), hub (§3.4.2 hubs), mu (hard \
     distribution), gnp, behrend (§5 removal-lemma instance; sized by n), diluted (1/ǫ \
     distractor leaves per triangle corner)."
  in
  Arg.(value
       & opt
           (enum
              [ ("far", `Far); ("free", `Free); ("hub", `Hub); ("mu", `Mu); ("gnp", `Gnp);
                ("behrend", `Behrend); ("diluted", `Diluted) ])
           `Far
       & info [ "instance" ] ~docv:"FAMILY" ~doc)

let partition_arg =
  let doc = "Edge partition: disjoint, dup (30% duplication), replicate, skewed, hash." in
  Arg.(value
       & opt (enum [ ("disjoint", `Disjoint); ("dup", `Dup); ("replicate", `Replicate); ("skewed", `Skewed); ("hash", `Hash) ]) `Dup
       & info [ "partition" ] ~docv:"PART" ~doc)

let protocol_arg =
  let doc = "Protocol: unrestricted (§3.3), sim (§3.4, d known), oblivious (Alg 11), exact ([38] baseline)." in
  Arg.(value
       & opt (enum [ ("unrestricted", `Unrestricted); ("sim", `Sim); ("oblivious", `Oblivious); ("exact", `Exact) ]) `Oblivious
       & info [ "protocol" ] ~docv:"PROTO" ~doc)

let blackboard_arg =
  Arg.(value & flag & info [ "blackboard" ] ~doc:"Use the blackboard model (Theorem 3.23) for the unrestricted protocol.")

let big_arg = Arg.(value & flag & info [ "big" ] ~doc:"Run the experiment at Big scale (minutes instead of seconds).")

let jobs_arg =
  let doc =
    "Worker domains for the measurement sweeps (default: the TFREE_JOBS environment variable, \
     then the hardware core count). Results are identical at every job count; only wall-clock \
     changes."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"JOBS" ~doc)

let set_jobs jobs = Option.iter Pool.set_jobs jobs

(* ------------------------------------------------------------- builders *)

let build_instance family rng ~n ~d ~eps =
  match family with
  | `Far -> Gen.far_with_degree rng ~n ~d ~eps
  | `Free -> Gen.free_with_degree rng ~n ~d
  | `Hub -> Gen.hub_far rng ~n ~hubs:(max 1 (n / 400)) ~pairs:(max 1 (int_of_float (eps *. float_of_int n *. d /. 2.0)))
  | `Mu -> Tfree_lowerbound.Mu_dist.sample rng ~part:(n / 3) ~gamma:2.0
  | `Gnp -> Gen.gnp rng ~n ~p:(Float.min 1.0 (d /. float_of_int n))
  | `Behrend ->
      (* pick digits/base so 6·(2·base)^digits is near n *)
      let base = max 2 (int_of_float (sqrt (float_of_int n /. 24.0))) in
      (Tfree_graph.Behrend.instance ~rng ~base ~digits:2 ()).Tfree_graph.Behrend.graph
  | `Diluted ->
      let extra = max 1 (int_of_float (1.0 /. (3.0 *. eps)) - 1) in
      let triangles = max 1 (n / (3 * (1 + extra))) in
      Gen.diluted_far rng ~triangles ~extra_degree:extra

let build_partition kind rng ~k g =
  match kind with
  | `Disjoint -> Partition.disjoint_random rng ~k g
  | `Dup -> Partition.with_duplication rng ~k ~dup_p:0.3 g
  | `Replicate -> Partition.replicate ~k g
  | `Skewed -> Partition.skewed rng ~k ~bias:0.8 g
  | `Hash -> Partition.by_endpoint_hash rng ~k g

(* ------------------------------------------------------------------ run *)

let run_cmd =
  let run seed n d k eps family part proto blackboard =
    let rng = Rng.create seed in
    let g = build_instance family rng ~n ~d ~eps in
    let inputs = build_partition part rng ~k g in
    Printf.printf "instance: n=%d m=%d avg degree %.2f; k=%d players (duplication %b)\n" (Graph.n g)
      (Graph.m g) (Graph.avg_degree g) k (Partition.has_duplication inputs);
    let params = Tfree.Params.(with_eps practical eps) in
    let report =
      match proto with
      | `Unrestricted ->
          let mode = if blackboard then Tfree_comm.Runtime.Blackboard else Tfree_comm.Runtime.Coordinator in
          Tfree.Tester.unrestricted ~mode ~seed params inputs
      | `Sim -> Tfree.Tester.simultaneous ~seed params ~d:(Graph.avg_degree g) inputs
      | `Oblivious -> Tfree.Tester.simultaneous_oblivious ~seed params inputs
      | `Exact -> Tfree.Tester.exact ~seed inputs
    in
    (match report.Tfree.Tester.verdict with
    | Tfree.Tester.Triangle (a, b, c) ->
        Printf.printf "verdict: TRIANGLE (%d,%d,%d) — verified real: %b\n" a b c
          (Triangle.is_triangle g (a, b, c))
    | Tfree.Tester.Triangle_free -> print_endline "verdict: no triangle found");
    Printf.printf "communication: %d bits over %d round(s); max single message %d bits\n"
      report.Tfree.Tester.bits report.Tfree.Tester.rounds report.Tfree.Tester.max_message
  in
  let term =
    Term.(const run $ seed_arg $ n_arg $ d_arg $ k_arg $ eps_arg $ instance_arg $ partition_arg
          $ protocol_arg $ blackboard_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Test a generated distributed instance with a chosen protocol.") term

(* ----------------------------------------------------------- experiment *)

let experiment_cmd =
  let run id big jobs =
    set_jobs jobs;
    match Tfree_experiments.Registry.find id with
    | Some e ->
        let scale = if big then Tfree_experiments.Common.Big else Tfree_experiments.Common.Small in
        Tfree_experiments.Registry.run_and_print ~scale e
    | None ->
        Printf.eprintf "unknown experiment %S; try `tfree list`\n" id;
        exit 1
  in
  let id_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id.") in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run one reproduction experiment and print its table(s).")
    Term.(const run $ id_arg $ big_arg $ jobs_arg)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Tfree_experiments.Registry.entry) ->
        Printf.printf "%-26s %s\n" e.Tfree_experiments.Registry.id e.Tfree_experiments.Registry.title)
      Tfree_experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the reproduction experiments.") Term.(const run $ const ())

(* -------------------------------------------------------------- inspect *)

let inspect_cmd =
  let run seed n d eps family =
    let rng = Rng.create seed in
    let g = build_instance family rng ~n ~d ~eps in
    let lo, hi = Distance.farness_interval g in
    Printf.printf "n=%d m=%d avg degree %.2f\n" (Graph.n g) (Graph.m g) (Graph.avg_degree g);
    Printf.printf "triangles: %d; greedy edge-disjoint packing: %d; triangle edges: %d\n"
      (Triangle.count g)
      (List.length (Triangle.greedy_packing g))
      (List.length (Triangle.triangle_edges g));
    Printf.printf "farness interval: [%.4f, %.4f] of m\n" lo hi;
    match Bucket.b_min g ~eps with
    | Some i ->
        Printf.printf "lowest full bucket B_min: index %d (degrees %d..%d), %d full vertices in graph\n" i
          (Bucket.d_minus i) (Bucket.d_plus i)
          (List.length (Bucket.full_vertices g ~eps))
    | None -> print_endline "no full bucket (graph close to triangle-free)"
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Generate an instance and print its triangle statistics.")
    Term.(const run $ seed_arg $ n_arg $ d_arg $ eps_arg $ instance_arg)

let () =
  let doc = "multiparty communication-complexity testers for triangle-freeness (PODC'17 reproduction)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "tfree" ~doc) [ run_cmd; experiment_cmd; list_cmd; inspect_cmd ]))
