(* tfree — command-line driver.

   Subcommands:
     run           test a generated or file-loaded distributed instance
     experiment    run a named reproduction experiment (see `tfree list`)
     list          list the reproduction experiments
     inspect       generate an instance and print its triangle statistics
     dataset       maintain a named-dataset manifest (list/info/import/gen)
     serve         answer queries over a Unix-domain socket (tfree-serve)
     client        query a running tfree-serve daemon
     top           live rates/latency dashboard over a daemon's stats
     trace-report  phase/player breakdown tables of a --trace file *)

open Cmdliner
open Tfree_util
open Tfree_graph
module Service = Tfree_wire.Service
module Wire = Tfree_wire.Wire_runtime
module Proto = Tfree_wire.Proto
module Trace = Tfree_trace.Trace
module Registry = Tfree_dataset.Registry
module Dataset_error = Tfree_dataset.Dataset_error
module Logger = Tfree_obs.Logger
module Prom = Tfree_obs.Prom
module Obs_phase = Tfree_obs.Phase
module Congest = Tfree_congest.Simulator
module Congest_tester = Tfree_congest.Triangle_tester

(* ----------------------------------------------------------- common args *)

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
let n_arg = Arg.(value & opt int 2000 & info [ "n" ] ~docv:"N" ~doc:"Number of vertices.")
let d_arg = Arg.(value & opt float 6.0 & info [ "d" ] ~docv:"D" ~doc:"Target average degree.")
let k_arg = Arg.(value & opt int 4 & info [ "k" ] ~docv:"K" ~doc:"Number of players.")
let eps_arg = Arg.(value & opt float 0.1 & info [ "eps" ] ~docv:"EPS" ~doc:"Farness parameter ǫ.")

let instance_arg =
  let doc =
    "Instance family: far (planted ǫ-far), free (triangle-free), hub (§3.4.2 hubs), mu (hard \
     distribution), gnp, behrend (§5 removal-lemma instance; sized by n), diluted (1/ǫ \
     distractor leaves per triangle corner)."
  in
  Arg.(value
       & opt
           (enum
              [ ("far", Service.Far); ("free", Service.Free); ("hub", Service.Hub);
                ("mu", Service.Mu); ("gnp", Service.Gnp); ("behrend", Service.Behrend);
                ("diluted", Service.Diluted) ])
           Service.Far
       & info [ "instance" ] ~docv:"FAMILY" ~doc)

let partition_arg =
  let doc = "Edge partition: disjoint, dup (30% duplication), replicate, skewed, hash." in
  Arg.(value
       & opt
           (enum
              [ ("disjoint", Service.Disjoint); ("dup", Service.Dup);
                ("replicate", Service.Replicate); ("skewed", Service.Skewed);
                ("hash", Service.Hash) ])
           Service.Dup
       & info [ "partition" ] ~docv:"PART" ~doc)

let protocol_arg =
  let doc = "Protocol: unrestricted (§3.3), sim (§3.4, d known), oblivious (Alg 11), exact ([38] baseline)." in
  Arg.(value
       & opt
           (enum
              [ ("unrestricted", Service.Unrestricted); ("sim", Service.Sim);
                ("oblivious", Service.Oblivious); ("exact", Service.Exact) ])
           Service.Oblivious
       & info [ "protocol" ] ~docv:"PROTO" ~doc)

(* The client's --protocol doubles as the wire-version switch: it accepts
   the tester protocols and the wire versions v1/v2/auto in one
   vocabulary, and may be repeated to set both (e.g. --protocol exact
   --protocol v1).  The wire choices: v1 speaks JSON lines with no
   handshake, v2/auto shake hands and use binary frames when the server
   agrees. *)
let client_protocol_arg =
  let doc =
    "Tester protocol (unrestricted, sim, oblivious, exact) and/or wire protocol (v1 = JSON \
     lines, v2 = binary frames, auto = negotiate); repeat the flag to set both."
  in
  Arg.(value
       & opt_all
           (enum
              [ ("unrestricted", `Tester Service.Unrestricted); ("sim", `Tester Service.Sim);
                ("oblivious", `Tester Service.Oblivious); ("exact", `Tester Service.Exact);
                ("v1", `Wire Proto.V1); ("v2", `Wire Proto.V2); ("auto", `Wire Proto.Auto) ])
           []
       & info [ "protocol" ] ~docv:"PROTO" ~doc)

let serve_protocol_arg =
  let doc =
    "Highest wire protocol the server negotiates: v1 (JSON lines only), v2 (binary frames for \
     clients that shake hands), auto (highest supported)."
  in
  Arg.(value
       & opt (enum [ ("v1", 1); ("v2", 2); ("auto", Proto.max_version) ]) Proto.max_version
       & info [ "protocol" ] ~docv:"VERSION" ~doc)

let blackboard_arg =
  Arg.(value & flag & info [ "blackboard" ] ~doc:"Use the blackboard model (Theorem 3.23) for the unrestricted protocol.")

let big_arg = Arg.(value & flag & info [ "big" ] ~doc:"Run the experiment at Big scale (minutes instead of seconds).")

let jobs_arg =
  let doc =
    "Worker domains for the measurement sweeps (default: the TFREE_JOBS environment variable, \
     then the hardware core count). Results are identical at every job count; only wall-clock \
     changes."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"JOBS" ~doc)

let set_jobs jobs = Option.iter Pool.set_jobs jobs

let socket_arg =
  Arg.(required
       & opt (some string) None
       & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let transport_arg =
  let doc = "Byte transport behind the wire runtime: pipe (in-memory) or socketpair (Unix sockets)." in
  Arg.(value
       & opt (enum [ ("pipe", Wire.Pipe); ("socketpair", Wire.Socketpair) ]) Wire.Pipe
       & info [ "transport" ] ~docv:"KIND" ~doc)

let fault_spec_arg =
  let doc =
    "Deterministic fault schedule, either explicit (OP:KIND[@ARG],... with kinds drop, \
     corrupt@BIT, truncate@KEEP, delay@AMOUNT, partial@AT, close — e.g. 2:drop,5:corrupt@13) \
     or seeded (seed=S,rate=R,ops=N[,kinds=drop+corrupt]).  For `run` the ops count frames on \
     the wire network; for `serve` they count the server's own replies."
  in
  Arg.(value & opt string "" & info [ "fault-spec" ] ~docv:"SPEC" ~doc)

let parse_fault_spec spec =
  match Tfree_wire.Fault.parse spec with
  | Ok s -> s
  | Error msg ->
      Printf.eprintf "error: bad --fault-spec: %s\n" msg;
      exit 2

(* dataset failures are user-input failures: report and exit, never a trace *)
let or_dataset_exit f =
  try f ()
  with Dataset_error.Dataset_error kind ->
    Printf.eprintf "error: %s\n" (Dataset_error.message kind);
    exit 1

let format_arg =
  let doc = "Input format: auto (sniff the content), dimacs, edges (0-based whitespace pairs), snapshot." in
  Arg.(value
       & opt
           (enum
              [ ("auto", None); ("dimacs", Some Registry.Dimacs); ("edges", Some Registry.Edges);
                ("snapshot", Some Registry.Snapshot) ])
           None
       & info [ "format" ] ~docv:"FORMAT" ~doc)

let manifest_arg =
  Arg.(value & opt string "datasets.json"
       & info [ "manifest" ] ~docv:"FILE"
           ~doc:"Dataset manifest (tfree-datasets/v1 JSON; entry paths resolve against its \
                 directory).")

(* ------------------------------------------------------------------ run *)

let print_report g (report : Tfree.Tester.report) =
  (match (report.Tfree.Tester.verdict, g) with
  | Tfree.Tester.Triangle (a, b, c), Some g ->
      Printf.printf "verdict: TRIANGLE (%d,%d,%d) — verified real: %b\n" a b c
        (Triangle.is_triangle g (a, b, c))
  | Tfree.Tester.Triangle (a, b, c), None -> Printf.printf "verdict: TRIANGLE (%d,%d,%d)\n" a b c
  | Tfree.Tester.Triangle_free, _ -> print_endline "verdict: no triangle found");
  Printf.printf "communication: %d bits over %d round(s); max single message %d bits\n"
    report.Tfree.Tester.bits report.Tfree.Tester.rounds report.Tfree.Tester.max_message

let verdict_string = function
  | Tfree.Tester.Triangle _ -> "triangle"
  | Tfree.Tester.Triangle_free -> "triangle-free"

(* The --congest path of `tfree run`: one node per vertex, a hard round
   budget, per-round accounting.  Shares --seed/--n/--d/--eps/--instance,
   --input and --trace with the communication protocols; partition, wire and
   fault flags are meaningless here (single-machine simulation of a
   message-passing network, no byte transport) and are rejected loudly. *)
let run_congest g ~eps ~seed ~rounds ~b_bits ~trace_out =
  let n = Graph.n g in
  let used_b_bits = match b_bits with Some b -> b | None -> Congest_tester.default_b_bits ~n in
  let collector = Option.map (fun _ -> Trace.create ()) trace_out in
  let tap = Option.map Trace.tap collector in
  let run_tester () = Congest_tester.test ?rounds ?b_bits ?tap g ~eps ~seed in
  let r =
    match collector with Some c -> Trace.with_collector c run_tester | None -> run_tester ()
  in
  let st = r.Congest_tester.stats in
  (match r.Congest_tester.triangle with
  | Some (a, b, c) ->
      Printf.printf "verdict: TRIANGLE (%d,%d,%d) — verified real: %b\n" a b c
        (Triangle.is_triangle g (a, b, c))
  | None -> print_endline "verdict: no triangle found");
  Printf.printf "congest: %s after %d of %d round(s); bandwidth %d bits/edge/round\n"
    (Congest.outcome_to_string st.Congest.outcome)
    r.Congest_tester.rounds r.Congest_tester.budget used_b_bits;
  Printf.printf "communication: %d bits in %d message(s); max single message %d bits\n"
    st.Congest.total_message_bits st.Congest.messages st.Congest.max_message_bits;
  match (collector, trace_out) with
  | Some c, Some file ->
      let accounted = st.Congest.total_message_bits in
      if not (Trace.decomposes c ~accounted) then (
        Printf.eprintf "trace: decomposition FAILED — traced %d bits, accounted %d\n"
          (Trace.total_bits c) accounted;
        exit 1);
      let json =
        Trace.to_chrome c
          ~other:
            [
              ("accounted_bits", Jsonout.Num (float_of_int accounted));
              ("protocol", Jsonout.Str "congest");
              ( "verdict",
                Jsonout.Str (match r.Congest_tester.triangle with Some _ -> "triangle" | None -> "triangle-free") );
              ("outcome", Jsonout.Str (Congest.outcome_to_string st.Congest.outcome));
              ("rounds_run", Jsonout.Num (float_of_int st.Congest.rounds_run));
              ("round_budget", Jsonout.Num (float_of_int r.Congest_tester.budget));
              ("b_bits", Jsonout.Num (float_of_int used_b_bits));
              ("n", Jsonout.Num (float_of_int n));
              ("seed", Jsonout.Num (float_of_int seed));
            ]
      in
      Out_channel.with_open_text file (fun oc -> Out_channel.output_string oc (Jsonout.to_string json));
      Printf.printf "trace: %d message event(s), %d bits = accounted bits exactly; wrote %s\n"
        (Trace.message_count c) (Trace.total_bits c) file
  | _ -> ()

let run_cmd =
  let run seed n d k eps family part proto blackboard wire transport fault_spec trace_out input
      format congest rounds b_bits =
    (* graph and partition draw from independent rng streams (the service's
       split), so a file-loaded graph partitions identically to the
       generated run of the same seed *)
    let g =
      match input with
      | Some file ->
          or_dataset_exit (fun () ->
              let g = Registry.load_graph ?format file in
              Printf.printf "input: %s (%s)\n" file
                (Registry.format_to_string
                   (match format with Some f -> f | None -> Registry.sniff file));
              g)
      | None -> Service.build_instance family (Service.graph_rng seed) ~n ~d ~eps
    in
    if congest then begin
      (* the congest simulation has no players, wire or faults to configure *)
      if wire || fault_spec <> "" then begin
        prerr_endline
          "error: --wire and --fault-spec do not apply to --congest (the simulated network has \
           no byte transport)";
        exit 2
      end;
      (match rounds with
      | Some r when r <= 0 ->
          prerr_endline "error: --rounds must be positive";
          exit 2
      | _ -> ());
      (match b_bits with
      | Some b when b < 0 ->
          prerr_endline "error: --b-bits must be non-negative";
          exit 2
      | _ -> ());
      Printf.printf "instance: n=%d m=%d avg degree %.2f; congest (one node per vertex)\n"
        (Graph.n g) (Graph.m g) (Graph.avg_degree g);
      run_congest g ~eps ~seed ~rounds ~b_bits ~trace_out
    end
    else begin
    let inputs = Service.build_partition part (Service.partition_rng seed) ~k g in
    Printf.printf "instance: n=%d m=%d avg degree %.2f; k=%d players (duplication %b)\n" (Graph.n g)
      (Graph.m g) (Graph.avg_degree g) k (Partition.has_duplication inputs);
    let params = Tfree.Params.(with_eps practical eps) in
    let fault = parse_fault_spec fault_spec in
    (* a fault schedule only means something on the wire, so it implies it *)
    let wire = wire || fault <> [] in
    let net = if wire then Some (Wire.create ~fault ~transport ~k ()) else None in
    let collector = Option.map (fun _ -> Trace.create ()) trace_out in
    (* trace before wire: record the declared message, then move its bytes *)
    let tap =
      match List.filter_map Fun.id [ Option.map Trace.tap collector; Option.map Wire.tap net ] with
      | [] -> None
      | taps -> Some (Tfree_comm.Channel.compose_all taps)
    in
    let run_protocol () =
      match proto with
      | Service.Unrestricted ->
          let mode = if blackboard then Tfree_comm.Runtime.Blackboard else Tfree_comm.Runtime.Coordinator in
          Tfree.Tester.unrestricted ~mode ?tap ~seed params inputs
      | Service.Sim -> Tfree.Tester.simultaneous ?tap ~seed params ~d:(Graph.avg_degree g) inputs
      | Service.Oblivious -> Tfree.Tester.simultaneous_oblivious ?tap ~seed params inputs
      | Service.Exact -> Tfree.Tester.exact ?tap ~seed inputs
    in
    let report =
      match
        match collector with
        | Some c -> Trace.with_collector c run_protocol
        | None -> run_protocol ()
      with
      | r -> r
      | exception Tfree_wire.Wire_error.Wire_error kind ->
          (* fail closed: an injected (or real) wire fault aborts the run
             with a typed error and a nonzero exit, never a wrong verdict *)
          Option.iter Wire.close net;
          Printf.eprintf "wire fault aborted the run: %s\n" (Tfree_wire.Wire_error.message kind);
          exit 3
    in
    print_report (Some g) report;
    Option.iter
      (fun net ->
        let r = Wire.report net ~accounted_bits:report.Tfree.Tester.bits in
        Printf.printf "wire (%s): %s\n" (Wire.kind_to_string (Wire.transport_kind net))
          (Wire.report_summary r);
        Wire.close net)
      net;
    match (collector, trace_out) with
    | Some c, Some file ->
        let accounted = report.Tfree.Tester.bits in
        if not (Trace.decomposes c ~accounted) then (
          Printf.eprintf "trace: decomposition FAILED — traced %d bits, accounted %d\n"
            (Trace.total_bits c) accounted;
          exit 1);
        let json =
          Trace.to_chrome c
            ~other:
              [
                ("accounted_bits", Jsonout.Num (float_of_int accounted));
                ("protocol", Jsonout.Str (Service.protocol_to_string proto));
                ("verdict", Jsonout.Str (verdict_string report.Tfree.Tester.verdict));
                ("n", Jsonout.Num (float_of_int (Graph.n g)));
                ("k", Jsonout.Num (float_of_int k));
                ("seed", Jsonout.Num (float_of_int seed));
              ]
        in
        Out_channel.with_open_text file (fun oc -> Out_channel.output_string oc (Jsonout.to_string json));
        Printf.printf "trace: %d message event(s), %d bits = accounted bits exactly; wrote %s\n"
          (Trace.message_count c) (Trace.total_bits c) file
    | _ -> ()
    end
  in
  let wire_arg =
    Arg.(value & flag
         & info [ "wire" ]
             ~doc:"Run the protocol over a real byte transport and print the wire-vs-model reconciliation.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record a phase-attributed trace of every charged message and write it as \
                   Chrome trace-event JSON (open in Perfetto, or feed to `tfree trace-report`).")
  in
  let input_arg =
    Arg.(value & opt (some string) None
         & info [ "input" ] ~docv:"FILE"
             ~doc:"Load the graph from FILE (see --format) instead of generating it; --instance, \
                   --n and --d are ignored.")
  in
  let congest_arg =
    Arg.(value & flag
         & info [ "congest" ]
             ~doc:"Run the CONGEST triangle tester (one node per vertex, synchronous rounds, \
                   bandwidth-capped edges) instead of a communication protocol; --k, --partition, \
                   --protocol are ignored, --wire and --fault-spec are rejected.")
  in
  let rounds_arg =
    Arg.(value & opt (some int) None
         & info [ "rounds" ] ~docv:"R"
             ~doc:"Hard round budget for --congest (default ceil(2/ǫ²)); running out of rounds is \
                   reported as the budget-exhausted outcome, not an error.")
  in
  let b_bits_arg =
    Arg.(value & opt (some int) None
         & info [ "b-bits" ] ~docv:"B"
             ~doc:"Per-edge per-round bandwidth cap in bits for --congest (default ⌈log₂ n⌉ + 1).")
  in
  let term =
    Term.(const run $ seed_arg $ n_arg $ d_arg $ k_arg $ eps_arg $ instance_arg $ partition_arg
          $ protocol_arg $ blackboard_arg $ wire_arg $ transport_arg $ fault_spec_arg $ trace_arg
          $ input_arg $ format_arg $ congest_arg $ rounds_arg $ b_bits_arg)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Test a generated (or --input file-loaded) distributed instance with a chosen \
             protocol.")
    term

(* --------------------------------------------------------- trace-report *)

let trace_report_cmd =
  let run file =
    let contents = In_channel.with_open_text file In_channel.input_all in
    match Jsonout.parse contents with
    | Error msg ->
        Printf.eprintf "error: %s is not valid JSON: %s\n" file msg;
        exit 1
    | Ok json ->
        let phases = Trace.phase_rows_of_chrome json in
        let players = Trace.player_rows_of_chrome json in
        let traced = List.fold_left (fun acc (_, _, bits) -> acc + bits) 0 phases in
        (match Trace.other_num_of_chrome "accounted_bits" json with
        | Some accounted ->
            Printf.printf "traced %d bits; accounted %d bits; decomposition %s\n" traced accounted
              (if traced = accounted then "exact" else "BROKEN")
        | None -> Printf.printf "traced %d bits (no accounted_bits recorded)\n" traced);
        let share bits = if traced = 0 then "-" else Table.fcell (100.0 *. float_of_int bits /. float_of_int traced) in
        Table.print
          (Table.make ~title:"Phase attribution" ~header:[ "phase"; "messages"; "bits"; "share %" ]
             (List.map
                (fun (phase, msgs, bits) -> [ phase; Table.icell msgs; Table.icell bits; share bits ])
                phases));
        print_newline ();
        Table.print
          (Table.make ~title:"Per-player traffic" ~header:[ "party"; "download bits"; "upload bits" ]
             (List.map
                (fun (label, down, up) -> [ label; Table.icell down; Table.icell up ])
                players));
        (* every message event carries its round, so any trace decomposes by
           round — for congest runs this is the per-round ledger (round_stats)
           recovered from the file alone.  Long runs collapse into a tail row. *)
        let rounds = Trace.round_rows_of_chrome json in
        if rounds <> [] then begin
          let shown, rest =
            if List.length rounds <= 16 then (rounds, [])
            else (List.filteri (fun i _ -> i < 16) rounds, List.filteri (fun i _ -> i >= 16) rounds)
          in
          let rows =
            List.map
              (fun (r, msgs, bits) -> [ Table.icell r; Table.icell msgs; Table.icell bits; share bits ])
              shown
            @
            match rest with
            | [] -> []
            | _ ->
                let msgs = List.fold_left (fun a (_, m, _) -> a + m) 0 rest in
                let bits = List.fold_left (fun a (_, _, b) -> a + b) 0 rest in
                [ [ Printf.sprintf "(+%d more)" (List.length rest); Table.icell msgs;
                    Table.icell bits; share bits ] ]
          in
          print_newline ();
          Table.print
            (Table.make ~title:"Per-round traffic" ~header:[ "round"; "messages"; "bits"; "share %" ] rows)
        end
  in
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"A trace written by run --trace.")
  in
  Cmd.v
    (Cmd.info "trace-report"
       ~doc:"Print the phase and per-player breakdown tables of a trace file.")
    Term.(const run $ file_arg)

(* ----------------------------------------------------------- experiment *)

let experiment_cmd =
  let run id big jobs =
    set_jobs jobs;
    match Tfree_experiments.Registry.find id with
    | Some e ->
        let scale = if big then Tfree_experiments.Common.Big else Tfree_experiments.Common.Small in
        Tfree_experiments.Registry.run_and_print ~scale e
    | None ->
        Printf.eprintf "unknown experiment %S; try `tfree list`\n" id;
        exit 1
  in
  let id_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id.") in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run one reproduction experiment and print its table(s).")
    Term.(const run $ id_arg $ big_arg $ jobs_arg)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Tfree_experiments.Registry.entry) ->
        Printf.printf "%-26s %s\n" e.Tfree_experiments.Registry.id e.Tfree_experiments.Registry.title)
      Tfree_experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the reproduction experiments.") Term.(const run $ const ())

(* -------------------------------------------------------------- inspect *)

let inspect_cmd =
  let run seed n d eps family =
    let rng = Rng.create seed in
    let g = Service.build_instance family rng ~n ~d ~eps in
    let lo, hi = Distance.farness_interval g in
    Printf.printf "n=%d m=%d avg degree %.2f\n" (Graph.n g) (Graph.m g) (Graph.avg_degree g);
    Printf.printf "triangles: %d; greedy edge-disjoint packing: %d; triangle edges: %d\n"
      (Triangle.count g)
      (List.length (Triangle.greedy_packing g))
      (List.length (Triangle.triangle_edges g));
    Printf.printf "farness interval: [%.4f, %.4f] of m\n" lo hi;
    match Bucket.b_min g ~eps with
    | Some i ->
        Printf.printf "lowest full bucket B_min: index %d (degrees %d..%d), %d full vertices in graph\n" i
          (Bucket.d_minus i) (Bucket.d_plus i)
          (List.length (Bucket.full_vertices g ~eps))
    | None -> print_endline "no full bucket (graph close to triangle-free)"
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Generate an instance and print its triangle statistics.")
    Term.(const run $ seed_arg $ n_arg $ d_arg $ eps_arg $ instance_arg)

(* -------------------------------------------------------------- dataset *)

let load_manifest path =
  or_dataset_exit (fun () ->
      if Sys.file_exists path then Registry.load path else Registry.create ~dir:(Filename.dirname path) ())

let dataset_name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Dataset name.")

let dataset_list_cmd =
  let run manifest =
    let reg = load_manifest manifest in
    match Registry.entries reg with
    | [] -> Printf.printf "no datasets in %s\n" manifest
    | entries ->
        Table.print
          (Table.make ~title:(Printf.sprintf "datasets (%s)" manifest)
             ~header:[ "name"; "format"; "n"; "m"; "path"; "origin" ]
             (List.map
                (fun (e : Registry.entry) ->
                  let origin =
                    match e.Registry.gen with
                    | None -> "imported"
                    | Some g ->
                        Printf.sprintf "gen %s n=%d d=%g eps=%g seed=%d" g.Registry.gen_family
                          g.Registry.gen_n g.Registry.gen_d g.Registry.gen_eps g.Registry.gen_seed
                  in
                  [ e.Registry.name;
                    Registry.format_to_string e.Registry.format;
                    Table.icell e.Registry.n; Table.icell e.Registry.m; e.Registry.path; origin ])
                entries))
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the datasets registered in the manifest.")
    Term.(const run $ manifest_arg)

let dataset_info_cmd =
  let run manifest name triangles =
    let reg = load_manifest manifest in
    match Registry.find reg name with
    | None ->
        Printf.eprintf "error: unknown dataset %S in %s\n" name manifest;
        exit 1
    | Some e ->
        Printf.printf "name: %s\nformat: %s\npath: %s\nn: %d\nm: %d\n" e.Registry.name
          (Registry.format_to_string e.Registry.format)
          (Registry.resolve_path reg e) e.Registry.n e.Registry.m;
        (match e.Registry.gen with
        | None -> print_endline "origin: imported"
        | Some g ->
            Printf.printf "origin: generated (%s n=%d d=%g eps=%g seed=%d)\n" g.Registry.gen_family
              g.Registry.gen_n g.Registry.gen_d g.Registry.gen_eps g.Registry.gen_seed);
        let g = or_dataset_exit (fun () -> Registry.graph reg name) in
        Printf.printf "loaded: n=%d m=%d avg degree %.2f (matches manifest)\n" (Graph.n g)
          (Graph.m g) (Graph.avg_degree g);
        if triangles then
          Printf.printf "triangles: %d; greedy edge-disjoint packing: %d\n" (Triangle.count g)
            (List.length (Triangle.greedy_packing g))
  in
  let triangles_arg =
    Arg.(value & flag
         & info [ "triangles" ] ~doc:"Also count triangles (scans the whole graph; slow on large corpora).")
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print one dataset's manifest entry and verify its file loads.")
    Term.(const run $ manifest_arg $ dataset_name_arg $ triangles_arg)

(* import and gen share the write path: snapshot next to the manifest,
   then register under the (relative) snapshot name *)
let register_snapshot reg manifest ~name ~gen g =
  let dir = Filename.dirname manifest in
  let file = name ^ ".tfs" in
  or_dataset_exit (fun () ->
      Tfree_dataset.Snapshot.save g (Filename.concat dir file);
      Registry.add reg
        { Registry.name; path = file; format = Registry.Snapshot; n = Graph.n g; m = Graph.m g; gen };
      Registry.save reg manifest);
  Printf.printf "registered %S: n=%d m=%d, snapshot %s, manifest %s\n" name (Graph.n g) (Graph.m g)
    (Filename.concat dir file) manifest

let dataset_import_cmd =
  let run manifest name file format raw =
    let reg = load_manifest manifest in
    let fmt = match format with Some f -> f | None -> or_dataset_exit (fun () -> Registry.sniff file) in
    let g = or_dataset_exit (fun () -> Registry.load_graph ~format:fmt file) in
    if raw then (
      or_dataset_exit (fun () ->
          Registry.add reg
            { Registry.name; path = file; format = fmt; n = Graph.n g; m = Graph.m g; gen = None };
          Registry.save reg manifest);
      Printf.printf "registered %S: n=%d m=%d, %s file %s, manifest %s\n" name (Graph.n g)
        (Graph.m g) (Registry.format_to_string fmt) file manifest)
    else register_snapshot reg manifest ~name ~gen:None g
  in
  let file_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE" ~doc:"Graph file to import.")
  in
  let raw_arg =
    Arg.(value & flag
         & info [ "raw" ]
             ~doc:"Register FILE in its original format instead of converting it to a snapshot.")
  in
  Cmd.v
    (Cmd.info "import"
       ~doc:"Parse a graph file, convert it to a compact snapshot next to the manifest (unless \
             --raw), and register it under NAME.")
    Term.(const run $ manifest_arg $ dataset_name_arg $ file_arg $ format_arg $ raw_arg)

let dataset_gen_cmd =
  let run manifest name family n d eps seed =
    let reg = load_manifest manifest in
    (* the service's graph stream, so {"op":"dataset"} over this snapshot
       answers byte-identically to the generated query of the same seed *)
    let g = Service.build_instance family (Service.graph_rng seed) ~n ~d ~eps in
    let gen =
      Some
        { Registry.gen_family = Service.family_to_string family; gen_n = n; gen_d = d;
          gen_eps = eps; gen_seed = seed }
    in
    register_snapshot reg manifest ~name ~gen g
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:"Generate an instance with the service's generator rng, snapshot it, and register it \
             under NAME with its generation parameters recorded.")
    Term.(const run $ manifest_arg $ dataset_name_arg $ instance_arg $ n_arg $ d_arg $ eps_arg
          $ seed_arg)

let dataset_cmd =
  Cmd.group
    (Cmd.info "dataset"
       ~doc:"Maintain the named-dataset manifest behind `tfree serve --datasets`: list and \
             inspect entries, import real graph files, generate reference corpora.")
    [ dataset_list_cmd; dataset_info_cmd; dataset_import_cmd; dataset_gen_cmd ]

(* ------------------------------------------------------- serve / client *)

let serve_cmd =
  let run path max_requests line_timeout backlog max_clients cache_capacity fault_spec
      max_version datasets preload log_file log_level slow_us trace_sample trace_out metrics_file
      metrics_interval workers =
    let fault = parse_fault_spec fault_spec in
    let registry =
      Option.map
        (fun manifest ->
          or_dataset_exit (fun () ->
              let reg = Registry.load manifest in
              if preload then Registry.preload reg;
              Printf.printf "tfree-serve: %d dataset(s) from %s%s\n%!"
                (List.length (Registry.entries reg))
                manifest
                (if preload then " (preloaded)" else "");
              reg))
        datasets
    in
    let level =
      match Logger.level_of_name log_level with
      | Some l -> l
      | None ->
          Printf.eprintf "error: unknown log level %S (use debug|info|warn|error)\n" log_level;
          exit 2
    in
    let logger = Option.map (fun path -> Logger.create ~level ~path ()) log_file in
    (match (slow_us, log_file) with
    | Some _, None ->
        Printf.eprintf "error: --slow-us needs --log FILE to write to\n";
        exit 2
    | _ -> ());
    (match (trace_sample, trace_out) with
    | n, None when n > 0 ->
        Printf.eprintf "error: --trace-sample needs --trace-out FILE to write to\n";
        exit 2
    | _ -> ());
    (match workers with
    | Some w when w < 1 ->
        Printf.eprintf "error: --workers must be >= 1\n";
        exit 2
    | _ -> ());
    Printf.printf
      "tfree-serve: listening on %s (backlog %d, max %d clients, cache %d, wire protocol <= v%d)%s%s\n%!"
      path backlog max_clients cache_capacity max_version
      (match workers with
      | Some w -> Printf.sprintf " (fleet of %d worker(s), shards at %s.w<i>)" w path
      | None -> "")
      (if fault = [] then "" else Printf.sprintf " (injecting %d reply fault(s))" (List.length fault));
    let served =
      Service.serve ~backlog ~max_clients ?max_requests ~line_timeout_s:line_timeout ~fault
        ~cache_capacity ~max_version ?registry ?logger ?slow_us ~trace_sample ?trace_out
        ?metrics_file ~metrics_interval_s:metrics_interval ?workers ~path ()
    in
    Option.iter Logger.close logger;
    Printf.printf "tfree-serve: served %d request(s); bye\n" served
  in
  let max_arg =
    Arg.(value & opt (some int) None
         & info [ "max-requests" ] ~docv:"N"
             ~doc:"Exit after N queries (default: run until a shutdown command).")
  in
  let line_timeout_arg =
    Arg.(value & opt float 30.0
         & info [ "line-timeout" ] ~docv:"SECONDS"
             ~doc:"Drop a connection that holds the server waiting longer than this for a \
                   complete request line.")
  in
  let backlog_arg =
    Arg.(value & opt int 64
         & info [ "backlog" ] ~docv:"N" ~doc:"Kernel accept-queue length for the listening socket.")
  in
  let max_clients_arg =
    Arg.(value & opt int 64
         & info [ "max-clients" ] ~docv:"N"
             ~doc:"Connections held open at once; one over the cap is shed with a typed \
                   overload error, never left hanging.")
  in
  let cache_arg =
    Arg.(value & opt int 32
         & info [ "cache-capacity" ] ~docv:"N"
             ~doc:"LRU instance/partition cache entries (0 disables); repeated seeds skip the \
                   instance rebuild.")
  in
  let datasets_arg =
    Arg.(value & opt (some string) None
         & info [ "datasets" ] ~docv:"MANIFEST"
             ~doc:"Load a dataset manifest at startup and answer {\"op\": \"dataset\"} queries \
                   over its registered graphs.")
  in
  let preload_arg =
    Arg.(value & flag
         & info [ "preload" ]
             ~doc:"Eagerly load every registered dataset at startup (with --datasets) instead \
                   of on first query.")
  in
  let log_arg =
    Arg.(value & opt (some string) None
         & info [ "log" ] ~docv:"FILE"
             ~doc:"Append leveled structured events (one JSON object per line) to FILE: \
                   start/accept/shed/request errors/slow queries/shutdown.")
  in
  let log_level_arg =
    Arg.(value & opt string "info"
         & info [ "log-level" ] ~docv:"LEVEL"
             ~doc:"Lowest level written to --log: debug, info, warn or error.")
  in
  let slow_arg =
    Arg.(value & opt (some float) None
         & info [ "slow-us" ] ~docv:"MICROSECONDS"
             ~doc:"With --log: log every query whose protocol-run phase exceeds this many \
                   microseconds, with its request key and latency breakdown.")
  in
  let trace_sample_arg =
    Arg.(value & opt int 0
         & info [ "trace-sample" ] ~docv:"N"
             ~doc:"Record every Nth request as a span timeline (serve phases plus protocol \
                   messages); 0 disables.  Needs --trace-out.")
  in
  let trace_out_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write the sampled request timelines in Chrome trace format to FILE at \
                   shutdown.")
  in
  let metrics_file_arg =
    Arg.(value & opt (some string) None
         & info [ "metrics-file" ] ~docv:"FILE"
             ~doc:"Atomically rewrite FILE with a Prometheus text exposition of the stats \
                   every --metrics-interval seconds (and at shutdown), for a node-exporter \
                   style scrape.")
  in
  let metrics_interval_arg =
    Arg.(value & opt float 5.0
         & info [ "metrics-interval" ] ~docv:"SECONDS"
             ~doc:"Seconds between --metrics-file rewrites (floored at 0.1).")
  in
  let workers_arg =
    Arg.(value & opt (some int) None
         & info [ "workers" ] ~docv:"N"
             ~doc:"Fleet mode: fork N worker processes sharing the public socket, each also \
                   owning a shard socket at PATH.w<i> (shard-aware clients route by instance \
                   key so every worker's cache stays hot).  Stats and health from any worker \
                   describe the whole fleet; dead workers are respawned with monotone \
                   counters.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Answer triangle-freeness queries over a Unix-domain socket (one JSON value per \
             line; requests name an instance family, a partition and a protocol — or, with \
             --datasets, a registered corpus).  A poll event loop serves many clients \
             concurrently, with per-connection deadlines, bounded admission and an LRU \
             instance cache; --workers forks a sharded multi-process fleet past a single \
             core.  The server degrades under bad clients and injected faults; it \
             never dies mid-conversation.  Observability: --log (structured JSONL events), \
             --slow-us (slow-query log), --trace-sample/--trace-out (sampled request \
             timelines), --metrics-file (Prometheus text dumps).")
    Term.(const run $ socket_arg $ max_arg $ line_timeout_arg $ backlog_arg $ max_clients_arg
          $ cache_arg $ fault_spec_arg $ serve_protocol_arg $ datasets_arg $ preload_arg
          $ log_arg $ log_level_arg $ slow_arg $ trace_sample_arg $ trace_out_arg
          $ metrics_file_arg $ metrics_interval_arg $ workers_arg)

let client_cmd =
  let run path shutdown stats health format as_json batch seed n d k eps family part proto_specs
      transport fault_spec timeout retries backoff dataset =
    ignore (parse_fault_spec fault_spec);
    if dataset <> None && batch <> None then (
      Printf.eprintf "error: --dataset and --batch cannot be combined\n";
      exit 2);
    let proto, wire_pref =
      List.fold_left
        (fun (p, w) -> function `Tester t -> (t, w) | `Wire v -> (p, v))
        (Service.Oblivious, Proto.Auto) proto_specs
    in
    if shutdown then (
      Service.client_shutdown ~protocol:wire_pref ~path ();
      print_endline "shutdown sent")
    else if health then (
      match Service.client_health ~timeout_s:timeout ~protocol:wire_pref ~path () with
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1
      | Ok health -> print_string (Jsonout.to_string health))
    else if stats then (
      match Service.client_stats ~timeout_s:timeout ~protocol:wire_pref ~path () with
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1
      | Ok stats -> (
          match format with
          | `Json -> print_string (Jsonout.to_string stats)
          | `Prom -> print_string (Prom.of_stats stats)))
    else
      let req =
        { Service.family; partition = part; protocol = proto; n; d; k; eps; seed; transport;
          fault = fault_spec }
      in
      let print_response resp =
        if as_json then print_endline (Jsonout.to_line (Service.response_to_json resp))
        else (
          print_report None
            {
              Tfree.Tester.verdict = resp.Service.verdict;
              bits = resp.Service.bits;
              rounds = resp.Service.rounds;
              max_message = resp.Service.max_message;
            };
          Printf.printf "wire: %s\n" (Wire.report_summary resp.Service.wire))
      in
      match batch with
      | None -> (
          let result =
            match dataset with
            | Some name ->
                let dreq =
                  { Service.ds_name = name; ds_partition = part; ds_protocol = proto; ds_k = k;
                    ds_eps = eps; ds_seed = seed; ds_transport = transport; ds_fault = fault_spec }
                in
                Service.client_dataset ~timeout_s:timeout ~retries ~backoff_s:backoff
                  ~backoff_seed:seed ~protocol:wire_pref ~path dreq
            | None ->
                Service.client_query ~timeout_s:timeout ~retries ~backoff_s:backoff
                  ~backoff_seed:seed ~protocol:wire_pref ~path req
          in
          match result with
          | Error msg ->
              Printf.eprintf "error: %s\n" msg;
              exit 1
          | Ok resp -> print_response resp)
      | Some count -> (
          (* one framed exchange covering seeds seed..seed+count-1 *)
          let reqs = List.init (max 0 count) (fun i -> { req with Service.seed = seed + i }) in
          match
            Service.client_batch ~timeout_s:timeout ~retries ~backoff_s:backoff ~backoff_seed:seed
              ~protocol:wire_pref ~path reqs
          with
          | Error msg ->
              Printf.eprintf "error: %s\n" msg;
              exit 1
          | Ok results ->
              let failed = ref false in
              List.iteri
                (fun i result ->
                  match result with
                  | Ok resp ->
                      if not as_json then Printf.printf "-- item %d (seed %d)\n" i (seed + i);
                      print_response resp
                  | Error msg ->
                      failed := true;
                      Printf.eprintf "item %d (seed %d) error: %s\n" i (seed + i) msg)
                results;
              if !failed then exit 1)
  in
  let shutdown_arg =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the server to shut down instead of querying.")
  in
  let stats_arg =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Fetch the server's telemetry (queries served, verdict counts, latency \
                   quantiles, wire traffic) instead of querying.")
  in
  let health_arg =
    Arg.(value & flag
         & info [ "health" ]
             ~doc:"Fetch the server's cheap liveness payload (uptime, served, errors, \
                   connection gauges, cache occupancy) instead of querying.")
  in
  let format_arg =
    Arg.(value & opt (enum [ ("json", `Json); ("prom", `Prom) ]) `Json
         & info [ "format" ] ~docv:"FORMAT"
             ~doc:"With --stats: print the raw JSON (json) or a Prometheus text exposition \
                   (prom).")
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Print the server's raw JSON reply.") in
  let batch_arg =
    Arg.(value & opt (some int) None
         & info [ "batch" ] ~docv:"N"
             ~doc:"Send N queries (seeds SEED..SEED+N-1) as one {\"op\": \"batch\"} exchange — \
                   one line out, one line back — and print each item's result.")
  in
  let timeout_arg =
    Arg.(value & opt float 30.0
         & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-attempt reply deadline.")
  in
  let retries_arg =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry transient failures up to N more times with exponential backoff.")
  in
  let backoff_arg =
    Arg.(value & opt float 0.05
         & info [ "backoff" ] ~docv:"SECONDS"
             ~doc:"Base backoff before the first retry; doubles each attempt, with jitter.")
  in
  let dataset_arg =
    Arg.(value & opt (some string) None
         & info [ "dataset" ] ~docv:"NAME"
             ~doc:"Query the named registered dataset ({\"op\": \"dataset\"}) instead of a \
                   generated instance; --instance, --n and --d are ignored.")
  in
  Cmd.v
    (Cmd.info "client" ~doc:"Query a running tfree-serve daemon.")
    Term.(const run $ socket_arg $ shutdown_arg $ stats_arg $ health_arg $ format_arg $ json_arg
          $ batch_arg $ seed_arg $ n_arg $ d_arg $ k_arg $ eps_arg $ instance_arg $ partition_arg
          $ client_protocol_arg $ transport_arg $ fault_spec_arg $ timeout_arg $ retries_arg
          $ backoff_arg $ dataset_arg)

(* ------------------------------------------------------------------ top *)

(* Live dashboard: poll a daemon's stats and print the diff of successive
   snapshots as rates.  Counters are lifetime-cumulative, so the delta
   over the poll interval (divided by the server's own uptime delta, not
   the client's sleep) is the instantaneous rate; quantiles are not
   diffable and are shown as the histogram's current lifetime value. *)
let top_cmd =
  let run path interval count proto_specs =
    let wire_pref =
      List.fold_left (fun w -> function `Wire v -> v | `Tester _ -> w) Proto.Auto proto_specs
    in
    let interval = Float.max 0.1 interval in
    let num keys j =
      let rec go j = function
        | [] -> Option.value ~default:0.0 (Jsonout.to_float j)
        | k :: rest -> ( match Jsonout.member k j with Some v -> go v rest | None -> 0.0)
      in
      go j keys
    in
    let fetch () =
      match Service.client_stats ~protocol:wire_pref ~path () with
      | Ok stats -> stats
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1
    in
    let phase_label p =
      match Obs_phase.name p with "cache_lookup" -> "cache" | name -> name
    in
    Printf.printf "%8s %8s %8s %10s %6s %5s" "uptime" "qps" "err/s" "bytes/s" "hit%" "infl";
    List.iter (fun p -> Printf.printf " %9s" ("p99:" ^ phase_label p)) Obs_phase.all;
    print_newline ();
    let prev = ref (fetch ()) in
    let ticks = ref 0 in
    while count = 0 || !ticks < count do
      Unix.sleepf interval;
      let cur = fetch () in
      let d keys = num keys cur -. num keys !prev in
      let dt = Float.max 1e-9 (num [ "uptime_s" ] cur -. num [ "uptime_s" ] !prev) in
      let lookups = d [ "cache"; "hits" ] +. d [ "cache"; "misses" ] in
      let hit_pct = if lookups > 0.0 then 100.0 *. d [ "cache"; "hits" ] /. lookups else 0.0 in
      Printf.printf "%8.1f %8.1f %8.1f %10.0f %6.1f %5.0f"
        (num [ "uptime_s" ] cur)
        (d [ "queries_served" ] /. dt)
        (d [ "errors" ] /. dt)
        (d [ "wire_bytes" ] /. dt)
        hit_pct
        (num [ "in_flight" ] cur);
      List.iter
        (fun p -> Printf.printf " %9.0f" (num [ "phases"; Obs_phase.name p; "p99" ] cur))
        Obs_phase.all;
      print_newline ();
      flush stdout;
      prev := cur;
      incr ticks
    done
  in
  let interval_arg =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~docv:"SECONDS" ~doc:"Seconds between stats polls.")
  in
  let count_arg =
    Arg.(value & opt int 0
         & info [ "count" ] ~docv:"N" ~doc:"Stop after N refreshes (0 = run until interrupted).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Poll a running tfree-serve daemon's stats and print successive-snapshot diffs as \
             live rates: queries/s, errors/s, bytes/s, cache hit ratio, open connections, and \
             the per-phase p99 latencies.")
    Term.(const run $ socket_arg $ interval_arg $ count_arg $ client_protocol_arg)

let () =
  let doc = "multiparty communication-complexity testers for triangle-freeness (PODC'17 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "tfree" ~doc)
          [ run_cmd; experiment_cmd; list_cmd; inspect_cmd; dataset_cmd; serve_cmd; client_cmd;
            top_cmd; trace_report_cmd ]))
